"""Tests for the message-passing protocol engine (tokens over the transport)."""

from __future__ import annotations

import pytest

from repro.core.config import ProtocolConfig, SimulationConfig
from repro.core.simulation import RGBSimulation


def build_event_sim(num_aps=12, ring_size=4, seed=3, **protocol_kwargs) -> RGBSimulation:
    protocol_kwargs.setdefault("aggregation_delay", 1.0)
    protocol = ProtocolConfig(**protocol_kwargs)
    return RGBSimulation(
        SimulationConfig(
            num_aps=num_aps,
            ring_size=ring_size,
            hosts_per_ap=0,
            seed=seed,
            engine_mode="event",
            protocol=protocol,
        )
    ).build()


class TestEventJoinLeave:
    def test_single_join_reaches_top_leader(self, event_sim):
        member = event_sim.join_member(ap_index=0)
        event_sim.run_until_quiescent()
        assert member.guid in event_sim.global_membership()

    def test_multiple_joins_from_different_rings(self, event_sim):
        members = [event_sim.join_member(ap_index=i) for i in (0, 5, 11)]
        event_sim.run_until_quiescent()
        view = event_sim.global_membership()
        assert all(m.guid in view for m in members)
        assert len(view) == 3

    def test_leave_removes_member(self, event_sim):
        member = event_sim.join_member(ap_index=0, guid="alice")
        event_sim.run_until_quiescent()
        event_sim.leave_member("alice")
        event_sim.run_until_quiescent()
        assert "alice" not in event_sim.global_membership()

    def test_join_uses_real_messages(self, event_sim):
        event_sim.join_member(ap_index=0)
        event_sim.run_until_quiescent()
        assert event_sim.metrics.counter("transport.sent").value > 0
        assert event_sim.metrics.counter("protocol.rounds_completed").value >= 1
        assert event_sim.engine.now > 0.0

    def test_views_consistent_across_ring_members(self, event_sim):
        event_sim.join_member(ap_index=2, guid="alice")
        event_sim.run_until_quiescent()
        ring = event_sim.ring_of(event_sim.access_proxies()[2])
        views = [
            event_sim.protocol.entity(str(node)).ring_members.snapshot() for node in ring.members
        ]
        assert len(set(views)) == 1

    def test_handoff_over_messages(self, event_sim):
        aps = event_sim.access_proxies()
        event_sim.join_member(ap_id=aps[0], guid="alice")
        event_sim.run_until_quiescent()
        event_sim.handoff_member("alice", aps[6])
        event_sim.run_until_quiescent()
        record = event_sim.protocol.entity(aps[6]).local_members.get("alice")
        assert record is not None
        assert event_sim.protocol.entity(aps[0]).local_members.get("alice") is None


class TestEventFailureDetection:
    def test_crashed_ap_detected_and_members_removed(self):
        sim = build_event_sim()
        aps = sim.access_proxies()
        ring = sim.ring_of(aps[0])
        victim = str(ring.members[1])
        survivor = str(ring.members[0])
        sim.join_member(ap_id=victim, guid="victim-member")
        sim.run_until_quiescent()
        sim.crash_entity(victim)
        sim.join_member(ap_id=survivor, guid="trigger")
        sim.run_until_quiescent()
        view = sim.global_membership()
        assert "victim-member" not in view
        assert "trigger" in view
        assert victim not in [str(n) for n in sim.ring_of(survivor).members]

    def test_crashed_leader_excluded_via_signal_fallback(self):
        sim = build_event_sim()
        aps = sim.access_proxies()
        ring = sim.ring_of(aps[0])
        leader = str(ring.leader)
        survivor = next(str(n) for n in ring.members if str(n) != leader)
        sim.crash_entity(leader)
        sim.join_member(ap_id=survivor, guid="bob")
        sim.run_until_quiescent()
        assert "bob" in sim.global_membership()
        new_leader = sim.ring_of(survivor).leader
        assert new_leader is not None and str(new_leader) != leader

    def test_crashed_node_stops_participating(self):
        sim = build_event_sim()
        aps = sim.access_proxies()
        sim.crash_entity(aps[0])
        node = sim.protocol.nodes[next(iter(sim.protocol.nodes))]
        # join at a crashed proxy is silently ignored by that node
        sim.protocol.join_member(aps[0], "ghost")
        sim.run_until_quiescent()
        assert "ghost" not in sim.global_membership()
        del node

    def test_heartbeat_rounds_detect_idle_ring_failures(self):
        sim = build_event_sim(heartbeat_interval=200.0)
        aps = sim.access_proxies()
        sim.join_member(ap_id=aps[0], guid="alice")
        sim.run_until_quiescent()
        ring = sim.ring_of(aps[0])
        victim = next(str(n) for n in ring.members if n != ring.leader)
        sim.crash_entity(victim)
        # No new membership traffic: only heartbeats can notice the crash.
        sim.run_until_quiescent()
        sim.run_until_quiescent()
        assert victim not in [str(n) for n in sim.ring_of(aps[0]).members]
        assert sim.metrics.counter("protocol.heartbeat_rounds").value > 0

    def test_token_retransmissions_counted_on_timeout(self):
        sim = build_event_sim()
        aps = sim.access_proxies()
        ring = sim.ring_of(aps[0])
        holder = str(ring.leader)
        victim = str(ring.successor(ring.leader))
        sim.join_member(ap_id=holder, guid="alice")
        sim.crash_entity(victim)
        sim.run_until_quiescent()
        assert sim.metrics.counter("protocol.token_retransmissions").value > 0
        assert sim.metrics.counter("protocol.ring_repairs").value >= 1
        assert "alice" in sim.global_membership()


class TestEventConfigurationVariants:
    def test_without_downward_dissemination(self):
        sim = build_event_sim(disseminate_downward=False)
        sim.join_member(ap_index=0, guid="alice")
        sim.run_until_quiescent()
        assert "alice" in sim.global_membership()
        notify_child = sim.metrics.counters.get("protocol.notify_child")
        assert notify_child is None or notify_child.value == 0

    def test_without_holder_acks(self):
        sim = build_event_sim(holder_ack_enabled=False)
        sim.join_member(ap_index=0, guid="alice")
        sim.run_until_quiescent()
        acks = sim.metrics.counters.get("protocol.holder_acks_received")
        assert acks is None or acks.value == 0
        assert "alice" in sim.global_membership()

    def test_aggregation_reduces_rounds_for_bursts(self):
        aggregated = build_event_sim()
        flat = build_event_sim(aggregate_mq=False, aggregation_delay=0.0)
        for sim in (aggregated, flat):
            ap = sim.access_proxies()[0]
            for i in range(6):
                sim.join_member(ap_id=ap, guid=f"m{i}")
            sim.run_until_quiescent()
            assert len(sim.global_membership()) == 6
        agg_rounds = aggregated.metrics.counter("protocol.rounds_completed").value
        flat_rounds = flat.metrics.counter("protocol.rounds_completed").value
        assert agg_rounds <= flat_rounds

    def test_deterministic_given_seed(self):
        results = []
        for _ in range(2):
            sim = build_event_sim(seed=9)
            sim.join_member(ap_index=0, guid="alice")
            sim.join_member(ap_index=7, guid="bob")
            sim.run_until_quiescent()
            results.append(
                (
                    sim.engine.dispatched_events,
                    sim.metrics.counter("protocol.token_hops").value,
                    tuple(sim.global_membership().guids()),
                )
            )
        assert results[0] == results[1]
