"""Perf-regression smoke test: the small bench tier must stay in its bands.

Runs the ``small`` tier of ``benchmarks/perf.py`` (sub-second micro/macro
benches) and fails when any named bench exceeds its ``perf_baseline.json``
tolerance band.  Bands are deliberately generous (3-5x the reference-machine
seconds) so only egregious regressions — an accidentally quadratic loop, a
dropped cache — trip the suite, not CI hardware variance.  The full tier
(10k churn cell, 1M-proxy propagation) runs in the scheduled slow CI job.

The test also exercises the ``BENCH_perf.json`` reporting path that the CI
artifact upload consumes.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


@pytest.fixture(scope="module")
def perf():
    import sys

    spec = importlib.util.spec_from_file_location("repro_perf", BENCHMARKS_DIR / "perf.py")
    module = importlib.util.module_from_spec(spec)
    # Dataclass field resolution looks the module up in sys.modules.
    sys.modules["repro_perf"] = module
    try:
        spec.loader.exec_module(module)
    except BaseException:
        sys.modules.pop("repro_perf", None)
        raise
    return module


@pytest.fixture(scope="module")
def small_tier_results(perf):
    # repeats=1 keeps the smoke test fast; bands absorb the extra noise.
    return perf.run_benches(perf.SMALL, repeats=1, progress=False)


def test_small_tier_covers_all_registered_small_benches(perf, small_tier_results):
    assert {r.name for r in small_tier_results} == set(perf.bench_names(perf.SMALL))
    assert {r.name for r in small_tier_results} >= {
        "ring_successor_10k",
        "engine_dispatch_50k",
        "delta_compile_apply",
        "kernel_propagate_4k",
        "matrix_churn_1k",
    }


def test_small_tier_within_baseline_bands(perf, small_tier_results):
    baseline = perf.load_baseline()
    assert baseline["benches"], "perf_baseline.json must ship with recorded bands"
    violations = perf.check_against_baseline(small_tier_results, baseline)
    assert not violations, "perf regression:\n" + "\n".join(violations)


def test_every_small_bench_has_a_band(perf, small_tier_results):
    """A new bench without a recorded band would silently never regress."""
    bands = perf.load_baseline()["benches"]
    missing = [r.name for r in small_tier_results if r.name not in bands]
    assert not missing, f"benches without baseline bands: {missing}"


def test_bench_report_written_for_artifact_upload(perf, small_tier_results, tmp_path):
    baseline = perf.load_baseline()
    out = tmp_path / "BENCH_perf.json"
    payload = perf.write_report(
        small_tier_results,
        baseline,
        perf.check_against_baseline(small_tier_results, baseline),
        out_path=out,
    )
    on_disk = json.loads(out.read_text())
    assert on_disk == payload
    assert on_disk["baseline"]["ok"] is True
    for result in small_tier_results:
        entry = on_disk["results"][result.name]
        assert entry["seconds"] == pytest.approx(result.seconds, abs=1e-4)
        assert entry["tier"] == "small"


def test_band_check_flags_slow_benches(perf):
    result = perf.BenchResult(name="matrix_churn_1k", tier="small", seconds=1e9, repeats=1)
    violations = perf.check_against_baseline([result], perf.load_baseline())
    assert len(violations) == 1
    assert "matrix_churn_1k" in violations[0]


def test_extra_min_floor_flags_shortfall_and_missing_extra(perf):
    baseline = {
        "benches": {"z": {"seconds": 1.0, "tolerance": 100.0, "extra_min": {"speedup": 10.0}}}
    }
    slow = perf.BenchResult(
        name="z", tier="full", seconds=0.5, repeats=1, extra={"speedup": 4.2}
    )
    violations = perf.check_against_baseline([slow], baseline)
    assert len(violations) == 1 and "below required floor" in violations[0]
    missing = perf.BenchResult(name="z", tier="full", seconds=0.5, repeats=1)
    violations = perf.check_against_baseline([missing], baseline)
    assert len(violations) == 1 and "not reported" in violations[0]
    ok = perf.BenchResult(
        name="z", tier="full", seconds=0.5, repeats=1, extra={"speedup": 12.0}
    )
    assert perf.check_against_baseline([ok], baseline) == []


def test_update_baseline_preserves_extra_min_floors(perf, tmp_path):
    """Floors are absolute acceptance bars — a re-pin must not drop them."""
    path = tmp_path / "perf_baseline.json"
    path.write_text(
        json.dumps(
            {"benches": {"z": {"seconds": 1.0, "tolerance": 5.0, "extra_min": {"speedup": 10.0}}}}
        )
    )
    results = [perf.BenchResult(name="z", tier="full", seconds=0.25, repeats=1)]
    perf.update_baseline(results, json.loads(path.read_text()), path=path)
    updated = json.loads(path.read_text())["benches"]["z"]
    assert updated["seconds"] == 0.25
    assert updated["extra_min"] == {"speedup": 10.0}


def test_update_baseline_repins_bands(perf, tmp_path):
    path = tmp_path / "perf_baseline.json"
    path.write_text(json.dumps({"benches": {"x": {"seconds": 1.0, "tolerance": 2.5}}}))
    results = [
        perf.BenchResult(name="x", tier="small", seconds=0.5, repeats=1),
        perf.BenchResult(name="y", tier="small", seconds=0.25, repeats=1),
    ]
    perf.update_baseline(results, json.loads(path.read_text()), path=path)
    updated = json.loads(path.read_text())["benches"]
    assert updated["x"] == {"seconds": 0.5, "tolerance": 2.5}
    assert updated["y"] == {"seconds": 0.25, "tolerance": 3.0}
