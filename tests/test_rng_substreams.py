"""Regression tests: stochastic processes draw from independent substreams.

The fault injector's Poisson-crash process and its transient-disconnection
process used to share the single ``"faults"`` stream, so generating one plan
shifted the draws — and therefore the schedule — of the other.  Each process
now owns a named substream (``faults.poisson`` / ``faults.transient``), and
the mobility model can be pointed at a dedicated stream, so adding one
workload to a scenario can never perturb another workload's draws under the
same master seed.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationEngine
from repro.sim.faults import FaultInjector
from repro.sim.mobility import MobilityModel
from repro.sim.network import INTRA_AS, Network, NetworkNode
from repro.sim.rng import RandomStreams

NODES = ["n0", "n1", "n2", "n3", "n4"]


def build_injector(streams: RandomStreams) -> FaultInjector:
    network = Network()
    for name in NODES:
        network.add_node(NetworkNode(node_id=name, kind="AP"))
    for a, b in zip(NODES, NODES[1:]):
        network.add_link(a, b, INTRA_AS)
    return FaultInjector(SimulationEngine(), network, streams)


def crash_times(injector: FaultInjector):
    plan = injector.poisson_crashes(NODES, rate_per_node=0.4, horizon=50.0)
    return [(str(e.target), e.time) for e in plan.sorted_events()]


def disconnect_times(injector: FaultInjector):
    plan = injector.transient_disconnections(
        NODES, rate_per_node=0.3, mean_downtime=4.0, horizon=50.0
    )
    return [(str(e.target), e.time, e.duration) for e in plan.sorted_events()]


class TestFaultProcessIndependence:
    def test_crash_plan_does_not_shift_disconnections(self):
        """Generating a crash plan first must not change the transient plan."""
        alone = disconnect_times(build_injector(RandomStreams(77)))
        injector = build_injector(RandomStreams(77))
        crash_times(injector)  # extra workload added to the same run
        combined = disconnect_times(injector)
        assert combined == alone

    def test_disconnections_do_not_shift_crash_plan(self):
        alone = crash_times(build_injector(RandomStreams(77)))
        injector = build_injector(RandomStreams(77))
        disconnect_times(injector)
        combined = crash_times(injector)
        assert combined == alone

    def test_each_process_is_still_seed_deterministic(self):
        assert crash_times(build_injector(RandomStreams(5))) == crash_times(
            build_injector(RandomStreams(5))
        )
        assert crash_times(build_injector(RandomStreams(5))) != crash_times(
            build_injector(RandomStreams(6))
        )


class TestMobilityStreamIndependence:
    def test_fault_draws_do_not_shift_mobility_trace(self):
        """Mobility shares the master seed with faults yet draws independently."""
        streams_alone = RandomStreams(41)
        alone = MobilityModel(NODES, streams_alone).generate_population(
            num_hosts=6, arrival_rate=0.5, horizon=300.0
        )

        streams_mixed = RandomStreams(41)
        injector = build_injector(streams_mixed)
        crash_times(injector)
        disconnect_times(injector)
        mixed = MobilityModel(NODES, streams_mixed).generate_population(
            num_hosts=6, arrival_rate=0.5, horizon=300.0
        )
        assert mixed.attachments == alone.attachments
        assert mixed.handoffs == alone.handoffs

    def test_named_mobility_streams_are_independent(self):
        streams = RandomStreams(41)
        first = MobilityModel(NODES, streams, stream_name="mobility.a")
        second = MobilityModel(NODES, streams, stream_name="mobility.b")
        trace_a = first.generate_host("h", 0.0)
        trace_b = second.generate_host("h", 0.0)
        # Different streams: same seed but independent draw sequences.
        assert (
            trace_a.attachments[-1].time != trace_b.attachments[-1].time
            or trace_a.handoffs != trace_b.handoffs
        )
        # And a second model on the *same* name continues that stream, while a
        # fresh family reproduces it from scratch.
        fresh = RandomStreams(41)
        again = MobilityModel(NODES, fresh, stream_name="mobility.a").generate_host("h", 0.0)
        assert again.attachments == trace_a.attachments
        assert again.handoffs == trace_a.handoffs


class TestSubstreamHelper:
    def test_substream_names_compose(self):
        streams = RandomStreams(3)
        sub = streams.substream("faults", "poisson")
        assert "faults.poisson" in streams
        direct = RandomStreams(3).stream("faults.poisson")
        assert sub.random(4).tolist() == direct.random(4).tolist()

    def test_substream_rejects_empty_parts(self):
        streams = RandomStreams(3)
        with pytest.raises(ValueError):
            streams.substream("", "poisson")
        with pytest.raises(ValueError):
            streams.substream("faults", "")

    def test_substream_independent_of_base_stream(self):
        streams = RandomStreams(9)
        base_draws = streams.stream("faults").random(5).tolist()
        sub_draws = streams.substream("faults", "poisson").random(5).tolist()
        assert base_draws != sub_draws
