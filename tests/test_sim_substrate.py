"""Unit tests for the simulation substrate: clock, engine, RNG, stats, trace."""

from __future__ import annotations

import pytest

from repro.sim.clock import ClockError, VirtualClock
from repro.sim.engine import SimulationEngine, SimulationError
from repro.sim.rng import RandomStreams
from repro.sim.stats import Counter, Histogram, MetricRegistry, TimeSeries
from repro.sim.trace import TraceRecorder


# ---------------------------------------------------------------------------
# VirtualClock
# ---------------------------------------------------------------------------


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_starts_at_custom_time(self):
        assert VirtualClock(5.0).now == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)

    def test_advances_forward(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_allows_equal_timestamp(self):
        clock = VirtualClock(3.0)
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_rejects_backwards_move(self):
        clock = VirtualClock(3.0)
        with pytest.raises(ClockError):
            clock.advance_to(2.0)

    def test_reset(self):
        clock = VirtualClock(3.0)
        clock.reset()
        assert clock.now == 0.0


# ---------------------------------------------------------------------------
# SimulationEngine
# ---------------------------------------------------------------------------


class TestSimulationEngine:
    def test_events_run_in_time_order(self, engine):
        order = []
        engine.schedule(5.0, lambda e: order.append("late"))
        engine.schedule(1.0, lambda e: order.append("early"))
        engine.schedule(3.0, lambda e: order.append("middle"))
        engine.run()
        assert order == ["early", "middle", "late"]

    def test_ties_broken_by_priority_then_insertion(self, engine):
        order = []
        engine.schedule(1.0, lambda e: order.append("second"), priority=5)
        engine.schedule(1.0, lambda e: order.append("first"), priority=-5)
        engine.schedule(1.0, lambda e: order.append("third"), priority=5)
        engine.run()
        assert order == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self, engine):
        seen = []
        engine.schedule(4.5, lambda e: seen.append(e.now))
        engine.run()
        assert seen == [4.5]
        assert engine.now == 4.5

    def test_callbacks_can_schedule_more_events(self, engine):
        seen = []

        def first(e):
            seen.append("first")
            e.schedule(2.0, lambda e2: seen.append("second"))

        engine.schedule(1.0, first)
        engine.run()
        assert seen == ["first", "second"]
        assert engine.now == 3.0

    def test_run_until_stops_before_later_events(self, engine):
        seen = []
        engine.schedule(1.0, lambda e: seen.append(1))
        engine.schedule(10.0, lambda e: seen.append(10))
        engine.run(until=5.0)
        assert seen == [1]
        assert engine.now == 5.0
        assert engine.pending() == 1

    def test_cancelled_event_does_not_run(self, engine):
        seen = []
        event = engine.schedule(1.0, lambda e: seen.append("nope"))
        assert event.cancel()
        engine.run()
        assert seen == []

    def test_cancel_after_dispatch_returns_false(self, engine):
        event = engine.schedule(1.0, lambda e: None)
        engine.run()
        assert event.dispatched
        assert not event.cancel()

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda e: None)

    def test_schedule_at_absolute_time(self, engine):
        seen = []
        engine.schedule_at(7.0, lambda e: seen.append(e.now))
        engine.run()
        assert seen == [7.0]

    def test_schedule_at_past_rejected(self, engine):
        engine.schedule(5.0, lambda e: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda e: None)

    def test_stop_interrupts_run(self, engine):
        seen = []

        def stopper(e):
            seen.append("stop")
            e.stop()

        engine.schedule(1.0, stopper)
        engine.schedule(2.0, lambda e: seen.append("after"))
        engine.run()
        assert seen == ["stop"]
        assert engine.pending() == 1

    def test_max_events_guard(self):
        engine = SimulationEngine(max_events=10)

        def forever(e):
            e.schedule(1.0, forever)

        engine.schedule(1.0, forever)
        with pytest.raises(SimulationError):
            engine.run()

    def test_step_returns_false_when_empty(self, engine):
        assert engine.step() is False

    def test_reset_clears_queue_and_clock(self, engine):
        engine.schedule(1.0, lambda e: None)
        engine.reset()
        assert engine.pending() == 0
        assert engine.now == 0.0

    def test_dispatched_counter(self, engine):
        for _ in range(4):
            engine.schedule(1.0, lambda e: None)
        dispatched = engine.run()
        assert dispatched == 4
        assert engine.dispatched_events == 4


# ---------------------------------------------------------------------------
# RandomStreams
# ---------------------------------------------------------------------------


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(42).stream("latency")
        b = RandomStreams(42).stream("latency")
        assert a.random(5).tolist() == b.random(5).tolist()

    def test_different_names_are_independent(self):
        streams = RandomStreams(42)
        a = streams.stream("latency").random(5).tolist()
        b = streams.stream("faults").random(5).tolist()
        assert a != b

    def test_stream_is_cached(self):
        streams = RandomStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_fork_changes_values_deterministically(self):
        base = RandomStreams(7)
        fork1 = base.fork(1).stream("mc").random(3).tolist()
        fork1_again = RandomStreams(7).fork(1).stream("mc").random(3).tolist()
        fork2 = base.fork(2).stream("mc").random(3).tolist()
        assert fork1 == fork1_again
        assert fork1 != fork2

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(0).stream("")

    def test_non_integer_seed_rejected(self):
        with pytest.raises(TypeError):
            RandomStreams("seed")  # type: ignore[arg-type]

    def test_contains(self):
        streams = RandomStreams(0)
        assert "x" not in streams
        streams.stream("x")
        assert "x" in streams


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_increments(self):
        counter = Counter("messages")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").increment(-1)

    def test_histogram_summary(self):
        hist = Histogram("latency")
        hist.extend([1.0, 2.0, 3.0, 4.0])
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0

    def test_histogram_percentile_bounds(self):
        hist = Histogram("x")
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.percentile(150)

    def test_empty_histogram_is_nan(self):
        import math

        assert math.isnan(Histogram("x").mean())

    def test_timeseries_requires_time_order(self):
        series = TimeSeries("members")
        series.record(1.0, 10)
        with pytest.raises(ValueError):
            series.record(0.5, 11)

    def test_timeseries_value_at(self):
        series = TimeSeries("members")
        series.record(0.0, 1)
        series.record(5.0, 2)
        series.record(10.0, 3)
        assert series.value_at(7.0) == 2
        assert series.value_at(10.0) == 3
        with pytest.raises(ValueError):
            series.value_at(-1.0)

    def test_registry_creates_and_reuses(self):
        registry = MetricRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("b") is registry.histogram("b")
        assert registry.timeseries("c") is registry.timeseries("c")

    def test_registry_snapshot(self):
        registry = MetricRegistry()
        registry.counter("sent").increment(3)
        registry.histogram("lat").observe(1.5)
        snap = registry.snapshot()
        assert snap["counter.sent"] == 3
        assert snap["histogram.lat"]["count"] == 1

    def test_merge_counters(self):
        registry = MetricRegistry()
        registry.merge_counters({"a": 2, "b": 3})
        registry.merge_counters({"a": 1})
        assert registry.counter("a").value == 3
        assert registry.counter("b").value == 3


# ---------------------------------------------------------------------------
# TraceRecorder
# ---------------------------------------------------------------------------


class TestTraceRecorder:
    def test_records_events(self):
        trace = TraceRecorder()
        trace.record(1.0, "token", "ap-1", "token passed", hops=3)
        assert len(trace) == 1
        assert trace.events[0].detail("hops") == 3

    def test_disabled_recorder_is_noop(self):
        trace = TraceRecorder(enabled=False)
        trace.record(1.0, "token", "ap-1", "x")
        assert len(trace) == 0

    def test_capacity_drops_extra_records(self):
        trace = TraceRecorder(capacity=2)
        for i in range(5):
            trace.record(float(i), "cat", "actor", "msg")
        assert len(trace) == 2
        assert trace.dropped == 3

    def test_filter_by_category_and_actor(self):
        trace = TraceRecorder()
        trace.record(1.0, "token", "a", "x")
        trace.record(2.0, "fault", "b", "y")
        trace.record(3.0, "token", "b", "z")
        assert len(trace.filter(category="token")) == 2
        assert len(trace.filter(actor="b")) == 2
        assert len(trace.filter(category="token", actor="b")) == 1
        assert len(trace.filter(predicate=lambda e: e.time > 1.5)) == 2

    def test_categories_histogram(self):
        trace = TraceRecorder()
        trace.record(1.0, "a", "x", "m")
        trace.record(2.0, "a", "x", "m")
        trace.record(3.0, "b", "x", "m")
        assert trace.categories() == {"a": 2, "b": 1}

    def test_format_limits_output(self):
        trace = TraceRecorder()
        for i in range(5):
            trace.record(float(i), "cat", "actor", f"msg{i}")
        text = trace.format(limit=2)
        assert "msg0" in text and "msg1" in text
        assert "3 more records" in text
