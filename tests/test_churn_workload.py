"""Tests for the churn workload generator (sampling complexity + edge cases)."""

from __future__ import annotations

import time

import pytest

from repro.workloads.churn import ChurnKind, ChurnWorkload


class TestSamplingScale:
    def test_large_trace_generates_in_linear_time(self):
        """Regression for the O(n log n)-per-event departure sampling.

        The seed implementation called ``sorted(population)`` inside the
        generate loop, which made a trace of this size take minutes; with the
        swap-remove sampling list it is linear in the event count and runs in
        well under the (very generous) bound below.
        """
        workload = ChurnWorkload(
            ap_ids=[f"ap-{i}" for i in range(64)],
            join_rate=50.0,
            leave_rate=0.05,
            failure_rate=0.02,
            horizon=1200.0,
            seed=11,
        )
        start = time.perf_counter()
        events = workload.generate()
        elapsed = time.perf_counter() - start
        assert len(events) > 50_000
        assert elapsed < 10.0, f"trace generation took {elapsed:.1f}s — sampling is superlinear"

    def test_departures_sample_live_members_uniformly_enough(self):
        """Swap-remove sampling must only ever pick currently joined members."""
        workload = ChurnWorkload(
            ap_ids=["a", "b"], join_rate=5.0, leave_rate=0.5, failure_rate=0.2,
            horizon=200.0, seed=3,
        )
        population = set()
        departed = set()
        for event in workload.generate():
            if event.kind is ChurnKind.JOIN:
                assert event.member not in population
                population.add(event.member)
            else:
                assert event.member in population
                assert event.member not in departed
                population.remove(event.member)
                departed.add(event.member)
        assert departed, "scenario should exercise departures"

    def test_deterministic_given_seed(self):
        make = lambda: ChurnWorkload(
            ap_ids=["a", "b", "c"], join_rate=2.0, leave_rate=0.1,
            failure_rate=0.05, horizon=100.0, seed=9,
        ).generate()
        assert make() == make()


class TestZeroJoinRate:
    def test_zero_join_rate_without_initial_members_rejected(self):
        with pytest.raises(ValueError, match="join_rate == 0"):
            ChurnWorkload(ap_ids=["a"], join_rate=0.0)

    def test_negative_join_rate_rejected(self):
        with pytest.raises(ValueError):
            ChurnWorkload(ap_ids=["a"], join_rate=-1.0)

    def test_pure_departure_trace_terminates_when_population_drains(self):
        """join_rate=0 over an initial population: the trace must end (no
        ZeroDivisionError / infinite loop) once every member departed."""
        workload = ChurnWorkload(
            ap_ids=["a", "b"],
            join_rate=0.0,
            leave_rate=1.0,
            failure_rate=0.5,
            initial_members=20,
            horizon=1e9,  # effectively unbounded: termination must come from drain
            seed=5,
        )
        events = workload.generate()
        assert len(events) == 20
        assert all(e.kind in (ChurnKind.LEAVE, ChurnKind.FAILURE) for e in events)
        assert len({e.member for e in events}) == 20

    def test_zero_departure_rates_with_zero_join_rate_terminate(self):
        workload = ChurnWorkload(
            ap_ids=["a"], join_rate=0.0, leave_rate=0.0, failure_rate=0.0,
            initial_members=3, horizon=100.0, seed=1,
        )
        assert workload.generate() == []


class TestInitialMembers:
    def test_initial_members_do_not_emit_join_events(self):
        workload = ChurnWorkload(
            ap_ids=["a", "b"], join_rate=1.0, leave_rate=0.2,
            initial_members=5, horizon=20.0, seed=2,
        )
        events = workload.generate()
        joined = {e.member for e in events if e.kind is ChurnKind.JOIN}
        assert not any(m.startswith(f"churn-2-init-") for m in joined)

    def test_initial_member_departures_reference_their_proxy(self):
        workload = ChurnWorkload(
            ap_ids=["a", "b", "c"], join_rate=0.0, leave_rate=2.0,
            initial_members=10, horizon=1e9, seed=7,
        )
        for event in workload.generate():
            assert event.ap in ("a", "b", "c")

    def test_negative_initial_members_rejected(self):
        with pytest.raises(ValueError):
            ChurnWorkload(ap_ids=["a"], initial_members=-1)
