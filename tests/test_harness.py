"""Tests for the event-driven scenario harness and the matrix runner."""

from __future__ import annotations

import pytest

from repro.analysis.tables import render_matrix
from repro.sim.harness import HarnessConfig, HarnessError, ScenarioHarness
from repro.workloads.matrix import (
    LOSS_RATES,
    SCENARIOS,
    MatrixCell,
    ScenarioMatrix,
    run_matrix_cell,
    shape_for_proxies,
)


def small_harness(**overrides) -> ScenarioHarness:
    defaults = dict(ring_size=4, height=2, seed=5)
    defaults.update(overrides)
    return ScenarioHarness(HarnessConfig(**defaults))


class TestHarnessBasics:
    def test_config_validation(self):
        with pytest.raises(HarnessError):
            HarnessConfig(ring_size=1)
        with pytest.raises(HarnessError):
            HarnessConfig(loss=1.0)
        with pytest.raises(HarnessError):
            HarnessConfig(round_delay=0.0)

    def test_network_mirrors_hierarchy(self):
        harness = small_harness()
        # One network node per hierarchy entity.
        assert len(harness.network) == harness.hierarchy.total_nodes()
        # Every member is physically linked to its parent node.
        for ring_id, ring in harness.hierarchy.rings.items():
            parent = harness.hierarchy.parent_node.get(ring_id)
            if parent is None:
                continue
            for member in ring.members:
                assert harness.network.has_link(parent.value, member.value)

    def test_join_propagates_to_global_view(self):
        harness = small_harness()
        aps = harness.access_proxies()
        harness.schedule_join(1.0, aps[0], guid="m-0")
        harness.schedule_join(2.0, aps[7], guid="m-1")
        result = harness.run()
        assert result.converged and result.ring_agreement
        assert harness.global_guids() == ["m-0", "m-1"]
        # Rounds really ran through the engine, not synchronously at t=0.
        assert result.sim_time > 2.0
        assert result.counters["harness.rounds"] > 0

    def test_messages_travel_through_transport(self):
        harness = small_harness()
        aps = harness.access_proxies()
        harness.schedule_join(1.0, aps[0], guid="m-0")
        harness.run()
        # Token hops, notifications and holder-acks are transport messages.
        assert harness.transport.sent_count("rgb.token") > 0
        assert harness.transport.sent_count("rgb.notify") > 0
        assert harness.transport.sent_count("rgb.holder-ack") > 0
        assert harness.transport.delivered_count() > 0

    def test_leave_and_handoff(self):
        harness = small_harness()
        aps = harness.access_proxies()
        harness.schedule_join(1.0, aps[0], guid="mover")
        harness.schedule_join(1.5, aps[1], guid="stayer")
        harness.schedule_handoff(30.0, "mover", aps[9])
        harness.schedule_leave(60.0, "stayer")
        result = harness.run()
        assert result.converged and result.ring_agreement
        assert harness.global_guids() == ["mover"]
        moved = [m for m in harness.global_membership() if str(m.guid) == "mover"]
        assert str(moved[0].ap) == aps[9]

    def test_lossy_run_converges(self):
        harness = small_harness(loss=0.10, seed=3)
        aps = harness.access_proxies()
        for index in range(8):
            harness.schedule_join(1.0 + index, aps[index % len(aps)], guid=f"m-{index}")
        result = harness.run()
        assert result.converged and result.ring_agreement
        assert len(harness.global_guids()) == 8
        # Loss actually happened and was masked by retries/resends.
        dropped = result.counters.get("transport.dropped", 0)
        retrans = result.counters.get("transport.retransmissions", 0)
        assert dropped + retrans > 0

    def test_crash_excludes_entity_and_its_members(self):
        harness = small_harness(seed=9)
        aps = harness.access_proxies()
        for index in range(4):
            harness.schedule_join(1.0 + index, aps[index], guid=f"m-{index}")
        harness.engine.run(until=20.0)  # let the joins propagate first
        victim = aps[0]
        harness.schedule_crash(25.0, victim)
        result = harness.run()
        assert result.converged and result.ring_agreement
        # The crashed proxy was surgically excluded from its ring...
        assert not harness.hierarchy.has_node(victim)
        assert result.counters["repairs.ring"] == 1
        # ... and the member attached to it was reported failed everywhere.
        assert harness.global_guids() == ["m-1", "m-2", "m-3"]


class TestAcceptance10k:
    def test_10k_proxies_5pct_loss_with_crash(self):
        """ISSUE acceptance: a seeded 10k-proxy run with 5% loss and one
        injected proxy crash completes full propagation with ring agreement."""
        harness = ScenarioHarness(
            HarnessConfig(ring_size=10, height=4, seed=42, loss=0.05)
        )
        aps = harness.access_proxies()
        assert len(aps) == 10_000
        for index in range(8):
            harness.schedule_join(1.0 + index, aps[(index * 1250) % len(aps)], guid=f"big-{index}")
        harness.schedule_crash(15.0, aps[0])
        result = harness.run()
        assert result.converged
        assert result.ring_agreement
        assert result.counters["repairs.ring"] >= 1
        # big-0 joined at the crashed proxy; everyone else fully propagated.
        assert harness.global_guids() == [f"big-{i}" for i in range(1, 8)]


class TestMatrix:
    def test_shape_for_proxies(self):
        assert shape_for_proxies(1_000) == (10, 3)
        assert shape_for_proxies(10_000) == (10, 4)
        assert shape_for_proxies(100_000) == (10, 5)
        assert shape_for_proxies(16) == (4, 2)
        with pytest.raises(ValueError):
            shape_for_proxies(17)

    def test_cell_validation(self):
        with pytest.raises(ValueError):
            MatrixCell(scenario="nope", num_proxies=16, loss=0.0)

    def test_matrix_enumerates_full_cross_product(self):
        matrix = ScenarioMatrix(sizes=(16, 64), losses=(0.0, 0.05))
        cells = matrix.cells()
        assert len(cells) == len(SCENARIOS) * 2 * 2
        assert {c.loss for c in cells} == {0.0, 0.05}

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_each_scenario_cell_runs_clean(self, scenario):
        result = run_matrix_cell(
            MatrixCell(scenario=scenario, num_proxies=16, loss=0.01, seed=2), events=12
        )
        assert result.converged
        assert result.ring_agreement
        assert result.dispatched_events > 0
        assert result.record.counter("harness.rounds") > 0
        assert result.record.value("events_per_second") > 0

    def test_partition_merge_cell_splits_then_heals(self):
        result = run_matrix_cell(
            MatrixCell(scenario="partition_merge", num_proxies=16, loss=0.0, seed=2),
            events=12,
        )
        assert result.record.value("partitions_split") >= 2
        assert result.record.value("partitions_healed") == 1

    def test_cells_are_reproducible(self):
        cell = MatrixCell(scenario="churn", num_proxies=16, loss=0.05, seed=4)
        first = run_matrix_cell(cell, events=12)
        second = run_matrix_cell(cell, events=12)
        assert first.dispatched_events == second.dispatched_events
        assert first.membership == second.membership
        assert first.record.counters == second.record.counters

    def test_render_matrix_table(self):
        result = run_matrix_cell(
            MatrixCell(scenario="churn", num_proxies=16, loss=0.01, seed=1), events=8
        )
        table = render_matrix([result.record])
        assert "Scenario matrix" in table
        assert "churn" in table
        assert "ok" in table

    def test_loss_rates_match_issue_sweep(self):
        assert LOSS_RATES == (0.0, 0.01, 0.05)
