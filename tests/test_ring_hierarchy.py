"""Unit tests for logical rings and the ring-based hierarchy (Figure 2)."""

from __future__ import annotations

import pytest

from repro.core.hierarchy import HierarchyBuilder, HierarchyError, RingHierarchy
from repro.core.identifiers import NodeId
from repro.core.ring import LogicalRing, RingError


def ring_of(*names: str, ring_id: str = "r", tier: int = 1) -> LogicalRing:
    return LogicalRing(ring_id=ring_id, tier=tier, members=[NodeId(n) for n in names])


# ---------------------------------------------------------------------------
# LogicalRing
# ---------------------------------------------------------------------------


class TestLogicalRing:
    def test_default_leader_is_first_member(self):
        ring = ring_of("b", "a", "c")
        assert ring.leader == NodeId("b")

    def test_duplicate_members_rejected(self):
        with pytest.raises(RingError):
            ring_of("a", "a")

    def test_leader_must_be_member(self):
        with pytest.raises(RingError):
            LogicalRing(ring_id="r", tier=1, members=[NodeId("a")], leader=NodeId("z"))

    def test_successor_and_predecessor_wrap_around(self):
        ring = ring_of("a", "b", "c")
        assert ring.successor(NodeId("c")) == NodeId("a")
        assert ring.predecessor(NodeId("a")) == NodeId("c")

    def test_members_from_starts_at_requested_node(self):
        ring = ring_of("a", "b", "c", "d")
        assert [n.value for n in ring.members_from(NodeId("c"))] == ["c", "d", "a", "b"]

    def test_unknown_member_raises(self):
        ring = ring_of("a", "b")
        with pytest.raises(RingError):
            ring.successor(NodeId("z"))

    def test_insert_member_after(self):
        ring = ring_of("a", "b", "c")
        ring.insert_member(NodeId("x"), after=NodeId("a"))
        assert [n.value for n in ring.members_in_order()] == ["a", "x", "b", "c"]

    def test_insert_duplicate_rejected(self):
        ring = ring_of("a", "b")
        with pytest.raises(RingError):
            ring.insert_member(NodeId("a"))

    def test_remove_member_splices_ring(self):
        ring = ring_of("a", "b", "c")
        was_leader = ring.remove_member(NodeId("b"))
        assert not was_leader
        assert ring.successor(NodeId("a")) == NodeId("c")

    def test_remove_leader_requires_reelection(self):
        ring = ring_of("b", "a", "c")
        assert ring.remove_member(NodeId("b"))
        assert ring.leader is None
        assert ring.elect_leader() == NodeId("a")  # smallest surviving id

    def test_edge_count(self):
        assert ring_of("a").edge_count() == 0
        assert ring_of("a", "b").edge_count() == 2
        assert ring_of("a", "b", "c", "d", "e").edge_count() == 5

    def test_functions_well_with_at_most_one_fault(self):
        ring = ring_of("a", "b", "c", "d")
        assert ring.functions_well(["a", "b", "c", "d"])
        assert ring.functions_well(["a", "b", "c"])
        assert not ring.functions_well(["a", "b"])

    def test_partition_count_single_fault_stays_whole(self):
        ring = ring_of("a", "b", "c", "d")
        assert ring.partition_count(["a", "b", "c", "d"]) == 1
        assert ring.partition_count(["a", "c", "d"]) == 1

    def test_partition_count_two_separated_faults_gives_two_arcs(self):
        ring = ring_of("a", "b", "c", "d")
        # faults at b and d leave arcs {a} and {c}
        assert ring.partition_count(["a", "c"]) == 2

    def test_partition_count_adjacent_faults_gives_one_arc(self):
        ring = ring_of("a", "b", "c", "d")
        assert ring.partition_count(["c", "d"]) == 1

    def test_partition_count_all_faulty(self):
        ring = ring_of("a", "b", "c")
        assert ring.partition_count([]) == 0


# ---------------------------------------------------------------------------
# RingHierarchy construction
# ---------------------------------------------------------------------------


class TestRegularHierarchy:
    @pytest.mark.parametrize("r,h", [(2, 2), (3, 2), (3, 3), (5, 2), (5, 3), (4, 4)])
    def test_counts_match_formulas(self, r, h):
        hierarchy = HierarchyBuilder("g").regular(ring_size=r, height=h)
        assert hierarchy.height == h
        assert hierarchy.total_rings == sum(r**i for i in range(h))
        assert len(hierarchy.access_proxies()) == r**h
        hierarchy.validate()

    def test_every_ring_has_exactly_r_members(self):
        hierarchy = HierarchyBuilder("g").regular(ring_size=4, height=3)
        assert all(len(ring) == 4 for ring in hierarchy.rings.values())

    def test_single_topmost_ring(self, deep_hierarchy):
        assert len(deep_hierarchy.rings_in_tier(deep_hierarchy.top_tier())) == 1
        assert deep_hierarchy.topmost_ring().tier == deep_hierarchy.top_tier()

    def test_parent_is_one_tier_above(self, deep_hierarchy):
        for ring_id, parent in deep_hierarchy.parent_node.items():
            child_tier = deep_hierarchy.ring(ring_id).tier
            assert deep_hierarchy.ring_of(parent).tier == child_tier + 1

    def test_ancestry_reaches_topmost_ring(self, deep_hierarchy):
        top_members = set(deep_hierarchy.topmost_ring().members)
        for ap in deep_hierarchy.access_proxies():
            chain = deep_hierarchy.ancestry(ap)
            assert chain and chain[-1] in top_members

    def test_children_of_node(self, deep_hierarchy):
        top = deep_hierarchy.topmost_ring()
        for node in top.members:
            child_ring_ids = deep_hierarchy.children_of_node(node)
            assert len(child_ring_ids) == 1
            assert deep_hierarchy.ring(child_ring_ids[0]).tier == top.tier - 1

    def test_logical_edge_count(self):
        hierarchy = HierarchyBuilder("g").regular(ring_size=3, height=2)
        # 4 rings of 3 edges each + 3 leader->parent links.
        assert hierarchy.logical_edge_count() == 4 * 3 + 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HierarchyBuilder("g").regular(ring_size=1, height=2)
        with pytest.raises(ValueError):
            HierarchyBuilder("g").regular(ring_size=3, height=1)


class TestHierarchyFromTopology:
    def test_three_tiers_built(self, small_topology):
        hierarchy = HierarchyBuilder("g").from_topology(small_topology)
        assert hierarchy.tiers() == [1, 2, 3]
        hierarchy.validate()

    def test_ap_rings_grouped_by_gateway(self, small_topology):
        hierarchy = HierarchyBuilder("g").from_topology(small_topology)
        arch = small_topology.architecture
        for ring in hierarchy.rings_in_tier(1):
            parent = hierarchy.parent_of_ring(ring.ring_id)
            assert parent is not None
            for ap in ring.members:
                assert arch.ap_parent[ap.value] == parent.value

    def test_all_aps_participate(self, small_topology):
        hierarchy = HierarchyBuilder("g").from_topology(small_topology)
        assert len(hierarchy.access_proxies()) == len(small_topology.access_proxies)

    def test_node_belongs_to_exactly_one_ring(self, small_topology):
        hierarchy = HierarchyBuilder("g").from_topology(small_topology)
        seen = []
        for ring in hierarchy.rings.values():
            seen.extend(ring.members)
        assert len(seen) == len(set(seen))


class TestHierarchyValidationAndEntities:
    def test_duplicate_ring_rejected(self, regular_hierarchy):
        ring = ring_of("zz-1", "zz-2", ring_id=list(regular_hierarchy.rings)[0])
        with pytest.raises(HierarchyError):
            regular_hierarchy.add_ring(ring)

    def test_node_in_two_rings_rejected(self, regular_hierarchy):
        existing = regular_hierarchy.bottom_rings()[0].members[0]
        ring = LogicalRing(ring_id="extra", tier=1, members=[existing])
        with pytest.raises(HierarchyError):
            regular_hierarchy.add_ring(ring)

    def test_missing_parent_fails_validation(self):
        hierarchy = RingHierarchy(group=HierarchyBuilder("g").group)
        hierarchy.add_ring(ring_of("t1", "t2", ring_id="top", tier=2))
        hierarchy.add_ring(ring_of("b1", "b2", ring_id="bottom", tier=1))  # no parent
        with pytest.raises(HierarchyError):
            hierarchy.validate()

    def test_ring_of_unknown_node(self, regular_hierarchy):
        with pytest.raises(HierarchyError):
            regular_hierarchy.ring_of("does-not-exist")

    def test_build_entity_states_wires_pointers(self, deep_hierarchy):
        states = deep_hierarchy.build_entity_states()
        assert len(states) == deep_hierarchy.total_nodes()
        for node, state in states.items():
            ring = deep_hierarchy.ring_of(node)
            assert state.ring_id == ring.ring_id
            assert state.leader == ring.leader
            assert state.next_node == ring.successor(node)
            assert state.previous == ring.predecessor(node)
            if ring.tier != deep_hierarchy.top_tier():
                assert state.parent == deep_hierarchy.parent_of_ring(ring.ring_id)
                assert state.parent_ok
            else:
                assert state.parent is None

    def test_entity_roles_follow_tiers(self, deep_hierarchy):
        states = deep_hierarchy.build_entity_states()
        for node, state in states.items():
            tier = deep_hierarchy.ring_of(node).tier
            if tier == deep_hierarchy.bottom_tier():
                assert state.role.value == "AP"
            elif tier == deep_hierarchy.top_tier():
                assert state.role.value == "BR"
            else:
                assert state.role.value == "AG"

    def test_children_are_child_ring_leaders(self, deep_hierarchy):
        states = deep_hierarchy.build_entity_states()
        for node, state in states.items():
            expected = set(deep_hierarchy.child_leaders(node))
            assert set(state.children) == expected
