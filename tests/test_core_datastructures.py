"""Unit tests for the paper's Section 4.2 data structures.

Identifiers, mobile host records, tokens, message queues, membership views and
network entity state.
"""

from __future__ import annotations

import pytest

from repro.core.entity import EntityRole, NetworkEntityState
from repro.core.identifiers import (
    GloballyUniqueId,
    GroupId,
    LocallyUniqueId,
    NodeId,
    coerce_group,
    coerce_guid,
    coerce_node,
    is_identifier,
    make_luid,
)
from repro.core.member import MemberInfo, MemberStatus, MobileHostState
from repro.core.membership import MembershipEventType, MembershipView
from repro.core.message_queue import MessageQueue
from repro.core.token import Token, TokenOperation, TokenOperationType


def make_member(guid="m-1", ap="ap-1", group="g", status=MemberStatus.OPERATIONAL) -> MemberInfo:
    return MemberInfo(
        guid=GloballyUniqueId(guid),
        group=GroupId(group),
        ap=NodeId(ap),
        luid=make_luid(ap, guid, 1),
        status=status,
    )


def join_op(guid="m-1", ap="ap-1", seq=1) -> TokenOperation:
    return TokenOperation(
        op_type=TokenOperationType.MEMBER_JOIN,
        origin=NodeId(ap),
        member=make_member(guid, ap),
        sequence=seq,
    )


def leave_op(guid="m-1", ap="ap-1", seq=2) -> TokenOperation:
    return TokenOperation(
        op_type=TokenOperationType.MEMBER_LEAVE,
        origin=NodeId(ap),
        member=make_member(guid, ap, status=MemberStatus.LEFT),
        sequence=seq,
    )


# ---------------------------------------------------------------------------
# identifiers
# ---------------------------------------------------------------------------


class TestIdentifiers:
    def test_empty_identifier_rejected(self):
        with pytest.raises(ValueError):
            NodeId("")

    def test_identifiers_are_ordered_and_hashable(self):
        assert NodeId("a") < NodeId("b")
        assert len({NodeId("a"), NodeId("a"), NodeId("b")}) == 2

    def test_str_and_format(self):
        assert str(GroupId("g1")) == "g1"
        assert f"{NodeId('ap-1'):>6}" == "  ap-1"

    def test_make_luid_encodes_ap_guid_epoch(self):
        luid = make_luid(NodeId("ap-3"), GloballyUniqueId("alice"), 2)
        assert isinstance(luid, LocallyUniqueId)
        assert "ap-3" in str(luid) and "alice" in str(luid) and "#2" in str(luid)

    def test_make_luid_rejects_negative_epoch(self):
        with pytest.raises(ValueError):
            make_luid("ap", "g", -1)

    def test_coercers(self):
        assert coerce_node("x") == NodeId("x")
        assert coerce_node(NodeId("x")) == NodeId("x")
        assert coerce_group("g") == GroupId("g")
        assert coerce_guid("m") == GloballyUniqueId("m")

    def test_is_identifier(self):
        assert is_identifier(NodeId("x"))
        assert not is_identifier("x")

    def test_identifier_types_are_distinct(self):
        assert NodeId("x") != GroupId("x") or type(NodeId("x")) is not type(GroupId("x"))


# ---------------------------------------------------------------------------
# mobile host state
# ---------------------------------------------------------------------------


class TestMobileHostState:
    def _host(self) -> MobileHostState:
        return MobileHostState(guid=GloballyUniqueId("alice"), group=GroupId("g"))

    def test_attach_sets_luid_and_status(self):
        host = self._host()
        record = host.attach(NodeId("ap-1"))
        assert host.status is MemberStatus.OPERATIONAL
        assert record.ap == NodeId("ap-1")
        assert record.luid is not None

    def test_handoff_changes_ap_and_luid_but_not_guid(self):
        host = self._host()
        first = host.attach(NodeId("ap-1"))
        second = host.handoff(NodeId("ap-2"))
        assert second.guid == first.guid
        assert second.ap == NodeId("ap-2")
        assert second.luid != first.luid

    def test_handoff_before_attach_rejected(self):
        with pytest.raises(ValueError):
            self._host().handoff(NodeId("ap-2"))

    def test_disconnect_and_leave(self):
        host = self._host()
        host.attach(NodeId("ap-1"))
        host.disconnect()
        assert host.status is MemberStatus.DISCONNECTED
        host.status = MemberStatus.OPERATIONAL
        host.disconnect(faulty=True)
        assert host.status is MemberStatus.FAILED
        host.leave()
        assert host.status is MemberStatus.LEFT and host.ap is None

    def test_to_member_info_requires_attachment(self):
        with pytest.raises(ValueError):
            self._host().to_member_info()

    def test_member_info_is_immutable_and_copyable(self):
        record = make_member()
        failed = record.with_status(MemberStatus.FAILED)
        assert record.status is MemberStatus.OPERATIONAL
        assert failed.status is MemberStatus.FAILED
        moved = record.handed_off_to(NodeId("ap-9"), 3)
        assert moved.ap == NodeId("ap-9") and record.ap == NodeId("ap-1")


# ---------------------------------------------------------------------------
# tokens
# ---------------------------------------------------------------------------


class TestToken:
    def test_member_op_requires_member(self):
        with pytest.raises(ValueError):
            TokenOperation(op_type=TokenOperationType.MEMBER_JOIN, origin=NodeId("ap"))

    def test_ne_op_requires_entity(self):
        with pytest.raises(ValueError):
            TokenOperation(op_type=TokenOperationType.NE_FAILURE, origin=NodeId("ap"))

    def test_handoff_requires_previous_ap(self):
        with pytest.raises(ValueError):
            TokenOperation(
                op_type=TokenOperationType.MEMBER_HANDOFF,
                origin=NodeId("ap-2"),
                member=make_member(ap="ap-2"),
            )

    def test_token_round_trip_and_visits(self):
        token = Token(group=GroupId("g"), holder=NodeId("a"), ring_id="r")
        token = token.with_operations([join_op()])
        token = token.record_visit(NodeId("a")).record_visit(NodeId("b"))
        assert token.visited == (NodeId("a"), NodeId("b"))
        assert not token.is_empty
        assert token.member_guids() == ["m-1"]

    def test_fresh_token_increments_round_and_clears_state(self):
        token = Token(group=GroupId("g"), holder=NodeId("a"), ring_id="r", operations=(join_op(),))
        fresh = token.fresh(NodeId("b"))
        assert fresh.holder == NodeId("b")
        assert fresh.round_number == token.round_number + 1
        assert fresh.is_empty and fresh.visited == ()

    def test_describe_mentions_operations(self):
        token = Token(group=GroupId("g"), holder=NodeId("a"), ring_id="r", operations=(join_op(),))
        assert "member-join" in token.describe()


# ---------------------------------------------------------------------------
# message queue aggregation
# ---------------------------------------------------------------------------


class TestMessageQueue:
    def _mq(self, aggregate=True) -> MessageQueue:
        return MessageQueue(NodeId("ap-1"), aggregate=aggregate)

    def test_insert_and_drain_preserves_order(self):
        mq = self._mq()
        mq.insert(join_op("a", seq=1), NodeId("ap-1"), 0.0)
        mq.insert(join_op("b", seq=2), NodeId("ap-1"), 1.0)
        drained = mq.drain()
        assert [op.member.guid.value for op in drained] == ["a", "b"]
        assert mq.is_empty

    def test_join_then_leave_cancels(self):
        mq = self._mq()
        mq.insert(join_op("a", seq=1), NodeId("ap-1"), 0.0)
        mq.insert(leave_op("a", seq=2), NodeId("ap-1"), 1.0)
        assert len(mq) == 0
        assert mq.total_aggregated_away == 2

    def test_join_then_handoff_collapses_to_join_at_new_ap(self):
        mq = self._mq()
        mq.insert(join_op("a", ap="ap-1", seq=1), NodeId("ap-1"), 0.0)
        handoff = TokenOperation(
            op_type=TokenOperationType.MEMBER_HANDOFF,
            origin=NodeId("ap-2"),
            member=make_member("a", "ap-2"),
            previous_ap=NodeId("ap-1"),
            sequence=2,
        )
        mq.insert(handoff, NodeId("ap-2"), 1.0)
        ops = mq.drain()
        assert len(ops) == 1
        assert ops[0].op_type is TokenOperationType.MEMBER_JOIN
        assert ops[0].member.ap == NodeId("ap-2")

    def test_handoff_then_handoff_keeps_original_previous_ap(self):
        mq = self._mq()
        h1 = TokenOperation(
            op_type=TokenOperationType.MEMBER_HANDOFF,
            origin=NodeId("ap-2"),
            member=make_member("a", "ap-2"),
            previous_ap=NodeId("ap-1"),
            sequence=1,
        )
        h2 = TokenOperation(
            op_type=TokenOperationType.MEMBER_HANDOFF,
            origin=NodeId("ap-3"),
            member=make_member("a", "ap-3"),
            previous_ap=NodeId("ap-2"),
            sequence=2,
        )
        mq.insert(h1, NodeId("ap-2"), 0.0)
        mq.insert(h2, NodeId("ap-3"), 1.0)
        ops = mq.drain()
        assert len(ops) == 1
        assert ops[0].previous_ap == NodeId("ap-1")
        assert ops[0].member.ap == NodeId("ap-3")

    def test_duplicate_operation_collapses(self):
        mq = self._mq()
        mq.insert(join_op("a", seq=1), NodeId("ap-1"), 0.0)
        mq.insert(join_op("a", seq=1), NodeId("ap-1"), 1.0)
        assert len(mq) == 1

    def test_different_members_do_not_interfere(self):
        mq = self._mq()
        mq.insert(join_op("a", seq=1), NodeId("ap-1"), 0.0)
        mq.insert(join_op("b", seq=2), NodeId("ap-1"), 1.0)
        mq.insert(leave_op("a", seq=3), NodeId("ap-1"), 2.0)
        ops = mq.drain()
        assert [op.member.guid.value for op in ops] == ["b"]

    def test_ne_duplicate_collapses(self):
        mq = self._mq()
        op = TokenOperation(
            op_type=TokenOperationType.NE_FAILURE, origin=NodeId("x"), entity=NodeId("ap-9"), sequence=1
        )
        mq.insert(op, NodeId("x"), 0.0)
        mq.insert(op, NodeId("x"), 1.0)
        assert len(mq) == 1

    def test_non_aggregating_queue_keeps_everything(self):
        mq = self._mq(aggregate=False)
        mq.insert(join_op("a", seq=1), NodeId("ap-1"), 0.0)
        mq.insert(leave_op("a", seq=2), NodeId("ap-1"), 1.0)
        assert len(mq) == 2
        assert mq.aggregation_ratio() == 0.0

    def test_senders_and_peek(self):
        mq = self._mq()
        mq.insert(join_op("a", seq=1), NodeId("child-1"), 0.0)
        mq.insert(join_op("b", seq=2), NodeId("child-2"), 1.0)
        assert mq.senders() == [NodeId("child-1"), NodeId("child-2")]
        assert len(mq.peek()) == 2
        assert len(mq) == 2  # peek does not drain


# ---------------------------------------------------------------------------
# membership views
# ---------------------------------------------------------------------------


class TestMembershipView:
    def _view(self) -> MembershipView:
        return MembershipView("ring", NodeId("ap-1"), GroupId("g"))

    def test_add_remove_and_contains(self):
        view = self._view()
        assert view.add(make_member("a"))
        assert "a" in view
        assert GloballyUniqueId("a") in view
        assert view.remove("a")
        assert "a" not in view
        assert not view.remove("a")

    def test_add_identical_record_reports_no_change(self):
        view = self._view()
        record = make_member("a")
        assert view.add(record)
        assert not view.add(record)
        assert view.version == 1

    def test_apply_join_and_leave_produce_events(self):
        view = self._view()
        event = view.apply(join_op("a", seq=1), time=1.0)
        assert event is not None and event.event_type is MembershipEventType.JOIN
        event = view.apply(leave_op("a", seq=2), time=2.0)
        assert event is not None and event.event_type is MembershipEventType.LEAVE
        assert len(view) == 0

    def test_apply_is_idempotent(self):
        view = self._view()
        assert view.apply(join_op("a", seq=1), 1.0) is not None
        assert view.apply(join_op("a", seq=1), 2.0) is None

    def test_ne_operation_does_not_change_view(self):
        view = self._view()
        op = TokenOperation(
            op_type=TokenOperationType.NE_FAILURE, origin=NodeId("x"), entity=NodeId("ap-2"), sequence=1
        )
        assert view.apply(op, 0.0) is None

    def test_members_sorted_and_members_at(self):
        view = self._view()
        view.add(make_member("b", ap="ap-2"))
        view.add(make_member("a", ap="ap-1"))
        assert view.guids() == ["a", "b"]
        assert [m.guid.value for m in view.members_at("ap-2")] == ["b"]

    def test_agreement_and_difference(self):
        v1, v2 = self._view(), self._view()
        v1.add(make_member("a"))
        v2.add(make_member("a"))
        assert v1.agrees_with(v2)
        v2.add(make_member("b"))
        assert not v1.agrees_with(v2)
        assert v1.difference(v2) == {"only_in_self": [], "only_in_other": ["b"]}

    def test_merge_from_counts_additions(self):
        v1, v2 = self._view(), self._view()
        v1.add(make_member("a"))
        v2.add(make_member("a"))
        v2.add(make_member("b"))
        assert v1.merge_from(v2) == 1
        assert v1.guids() == ["a", "b"]

    def test_copy_is_independent(self):
        view = self._view()
        view.add(make_member("a"))
        clone = view.copy()
        clone.add(make_member("b"))
        assert "b" not in view


# ---------------------------------------------------------------------------
# network entity state
# ---------------------------------------------------------------------------


class TestNetworkEntityState:
    def _entity(self) -> NetworkEntityState:
        return NetworkEntityState(
            current=NodeId("ap-1"), role=EntityRole.ACCESS_PROXY, group=GroupId("g")
        )

    def test_role_tiers(self):
        assert EntityRole.ACCESS_PROXY.tier == 1
        assert EntityRole.ACCESS_GATEWAY.tier == 2
        assert EntityRole.BORDER_ROUTER.tier == 3
        assert EntityRole.from_kind("AG") is EntityRole.ACCESS_GATEWAY
        with pytest.raises(ValueError):
            EntityRole.from_kind("XX")

    def test_ring_pointer_wiring(self):
        entity = self._entity()
        entity.set_ring_pointers("ring-1", NodeId("ap-1"), NodeId("ap-3"), NodeId("ap-2"))
        assert entity.is_leader
        assert entity.ring_ok
        assert entity.previous == NodeId("ap-3")
        assert entity.next_node == NodeId("ap-2")

    def test_parent_and_children_flags(self):
        entity = self._entity()
        assert not entity.parent_ok and not entity.child_ok
        entity.set_parent(NodeId("ag-1"))
        assert entity.parent_ok
        entity.add_child(NodeId("x"))
        entity.add_child(NodeId("x"))
        assert entity.children == [NodeId("x")]
        assert entity.child == NodeId("x")
        entity.remove_child(NodeId("x"))
        assert not entity.child_ok and entity.child is None

    def test_local_member_registration_updates_ring_view(self):
        entity = self._entity()
        assert entity.register_local_member(make_member("a"))
        assert len(entity.local_members) == 1
        assert len(entity.ring_members) == 1
        assert entity.unregister_local_member("a")
        assert len(entity.local_members) == 0

    def test_summary_round_trips_key_fields(self):
        entity = self._entity()
        entity.set_ring_pointers("ring-1", NodeId("ap-1"), NodeId("ap-3"), NodeId("ap-2"))
        summary = entity.summary()
        assert summary["current"] == "ap-1"
        assert summary["ring_id"] == "ring-1"
        assert summary["ring_ok"] is True
        assert summary["mq_pending"] == 0
