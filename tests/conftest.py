"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import ProtocolConfig, SimulationConfig
from repro.core.hierarchy import HierarchyBuilder, RingHierarchy
from repro.core.one_round import OneRoundEngine
from repro.core.simulation import RGBSimulation
from repro.sim.engine import SimulationEngine
from repro.sim.network import INTRA_AS, Network, NetworkNode
from repro.sim.rng import RandomStreams
from repro.sim.transport import Transport
from repro.topology.architecture import TopologySpec
from repro.topology.generator import TopologyGenerator


@pytest.fixture
def streams() -> RandomStreams:
    return RandomStreams(1234)


@pytest.fixture
def engine() -> SimulationEngine:
    return SimulationEngine()


@pytest.fixture
def small_network() -> Network:
    """A five-node line-plus-shortcut network used by transport tests."""
    network = Network()
    for name in ("a", "b", "c", "d", "e"):
        network.add_node(NetworkNode(node_id=name, kind="AP"))
    network.add_link("a", "b", INTRA_AS)
    network.add_link("b", "c", INTRA_AS)
    network.add_link("c", "d", INTRA_AS)
    network.add_link("d", "e", INTRA_AS)
    network.add_link("a", "e", INTRA_AS)
    return network


@pytest.fixture
def transport(engine, small_network, streams) -> Transport:
    return Transport(engine, small_network, streams)


@pytest.fixture
def small_topology():
    spec = TopologySpec(num_border_routers=2, ags_per_br=2, aps_per_ag=3, hosts_per_ap=2)
    return TopologyGenerator(spec, RandomStreams(7)).generate()


@pytest.fixture
def regular_hierarchy() -> RingHierarchy:
    """Regular hierarchy, h=2, r=3: one top ring over three 3-node AP rings."""
    return HierarchyBuilder("test-group").regular(ring_size=3, height=2)


@pytest.fixture
def deep_hierarchy() -> RingHierarchy:
    """Regular hierarchy, h=3, r=3 (27 access proxies, 13 rings)."""
    return HierarchyBuilder("test-group").regular(ring_size=3, height=3)


@pytest.fixture
def one_round_engine(deep_hierarchy) -> OneRoundEngine:
    return OneRoundEngine(deep_hierarchy, config=ProtocolConfig(aggregation_delay=0.0))


@pytest.fixture
def structural_sim() -> RGBSimulation:
    return RGBSimulation(
        SimulationConfig(num_aps=12, ring_size=4, hosts_per_ap=0, seed=3)
    ).build()


@pytest.fixture
def event_sim() -> RGBSimulation:
    return RGBSimulation(
        SimulationConfig(
            num_aps=12,
            ring_size=4,
            hosts_per_ap=0,
            seed=3,
            engine_mode="event",
            protocol=ProtocolConfig(aggregation_delay=1.0),
        )
    ).build()
