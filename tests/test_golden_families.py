"""Golden cross-protocol traces for the adversarial scenario families.

One small seeded cell of each family (16 proxies, seed 0) compiles to a
single fault script that replays — verbatim, through the protocol-neutral op
list — across all four protocols behind the ``MembershipProtocol`` seam.
The per-protocol cost/membership values and the cross-protocol conformance
verdicts are canonicalised against ``tests/golden/families_small.json``.
Regenerate after an intentional change::

    PYTHONPATH=src python tests/test_golden_families.py --regen

Two DISAGREEs are *pinned as honest*:

* ``replay_injection`` — a stale replay of a departed member's original join
  resurrects it in every toy baseline (they re-apply whatever arrives); the
  RGB kernel's per-member sequence watermark (``stale_for``) absorbs it.
* ``correlated_failure`` — annihilating an entire bottom ring defeats RGB's
  ring-internal failure detection (Section 5.2 detects by token
  retransmission *within* a ring; the last AP's crash has no surviving ring
  peer to observe it), so RGB retains the member attached at the last victim
  AP while the globally-informed toys remove everyone.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Set, Tuple

from repro.baselines.driver import PROTOCOL_NAMES, build_protocol
from repro.workloads.matrix import replay_workload, script_to_ops
from repro.workloads.spec import ScenarioSpec, compile_spec

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
GOLDEN_PATH = GOLDEN_DIR / "families_small.json"

FAMILIES = ("flash_crowd", "correlated_failure", "diurnal_mobility", "replay_injection")
#: Value keys that measure wall clock, not protocol behaviour.
NONDETERMINISTIC = ("wall_seconds", "build_seconds", "events_per_second")


def _replay(family: str, protocol: str) -> Tuple[Dict[str, float], Set[str]]:
    """Replay the family's compiled script through one protocol driver."""
    script = compile_spec(
        ScenarioSpec(family=family, num_proxies=16, loss=0.0, seed=0, events=12)
    ).script
    driver = build_protocol(protocol, 16, loss=0.0, seed=0)
    ops = script_to_ops(script, driver.sites)
    ops.sort(key=lambda op: op.time)
    replay_workload(driver, ops)
    values = {key: round(float(v), 6) for key, v in driver.totals.as_values().items()}
    values["converged"] = 1.0 if driver.global_agreement() else 0.0
    values["membership"] = float(len(driver.members()))
    return values, set(driver.members())


def canonical_families() -> str:
    """All families x all protocols, canonicalised for golden comparison."""
    out: Dict[str, Dict[str, object]] = {}
    for family in FAMILIES:
        protocols: Dict[str, Dict[str, float]] = {}
        memberships: Dict[str, Set[str]] = {}
        for protocol in PROTOCOL_NAMES:
            values, members = _replay(family, protocol)
            protocols[protocol] = values
            memberships[protocol] = members
        baseline = memberships["gossip"]
        diffs: Dict[str, Dict[str, List[str]]] = {}
        for protocol in PROTOCOL_NAMES:
            extra = sorted(memberships[protocol] - baseline)
            missing = sorted(baseline - memberships[protocol])
            if extra or missing:
                diffs[protocol] = {"extra": extra, "missing": missing}
        out[family] = {
            "protocols": protocols,
            "conformance": {
                "verdict": "DISAGREE" if diffs else "AGREE",
                "diffs_vs_gossip": diffs,
            },
        }
    return json.dumps(out, indent=2, sort_keys=True) + "\n"


class TestGoldenFamilies:
    def test_canonicalisation_is_deterministic(self):
        assert canonical_families() == canonical_families()

    def test_families_match_golden_file(self):
        assert GOLDEN_PATH.exists(), (
            f"missing golden file {GOLDEN_PATH}; regenerate with "
            "`PYTHONPATH=src python tests/test_golden_families.py --regen`"
        )
        assert canonical_families() == GOLDEN_PATH.read_text()

    def test_pinned_resurrection_disagree(self):
        """Stale join replays resurrect departed members in every toy, not RGB."""
        _, rgb = _replay("replay_injection", "rgb")
        for protocol in ("gossip", "tree", "flat_ring"):
            _, toy = _replay("replay_injection", protocol)
            resurrected = {m for m in toy - rgb if m.startswith("ri-stale-")}
            assert resurrected, f"{protocol} should resurrect stale-replayed members"
            assert not any(m.startswith("ri-stale-") for m in rgb)

    def test_pinned_annihilated_ring_ghost(self):
        """RGB keeps exactly the member whose whole bottom ring died."""
        _, rgb = _replay("correlated_failure", "rgb")
        _, gossip = _replay("correlated_failure", "gossip")
        ghosts = rgb - gossip
        assert len(ghosts) == 1
        assert not gossip - rgb
        assert next(iter(ghosts)).startswith("cf-")

    def test_correlated_failure_head_to_head_costs(self):
        """The honest cost story: RGB pays repair traffic, toys pay nothing."""
        golden = json.loads(GOLDEN_PATH.read_text())
        table = golden["correlated_failure"]["protocols"]
        assert set(table) == set(PROTOCOL_NAMES)
        for protocol, values in table.items():
            assert values["site_failures"] >= 4.0, protocol
            assert values["injections"] == 0.0, protocol
        # Interior-entity crashes only exist in the hierarchical protocols;
        # the flat toys skip (and count) them rather than dropping silently.
        assert golden["correlated_failure"]["protocols"]["gossip"]["skipped_events"] >= 1.0


def _regen() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    GOLDEN_PATH.write_text(canonical_families())
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
