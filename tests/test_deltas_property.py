"""Property tests: batched MembershipDelta application == sequential apply.

The kernel compiles each token round's aggregated operations into one
:class:`repro.core.deltas.MembershipDelta` and applies it to every visited
member list in a single pass.  These hypothesis tests pin the contract that
makes that safe: for *arbitrary* operation sequences — duplicate members,
join/leave/handoff interleavings, repeated operations — ``apply_all`` on the
compiled delta leaves a view with member lists identical to sequential
per-operation ``apply``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deltas import DeltaBuilder, MembershipDelta
from repro.core.identifiers import GloballyUniqueId, GroupId, NodeId, make_luid
from repro.core.member import MemberInfo, MemberStatus
from repro.core.membership import MembershipView
from repro.core.token import TokenOperation, TokenOperationType

GROUP = GroupId("prop-group")
GUIDS = [f"m{i:02d}" for i in range(8)]
APS = [f"ap-{i}" for i in range(4)]


def _member(guid: str, ap: str, epoch: int, status: MemberStatus) -> MemberInfo:
    return MemberInfo(
        guid=GloballyUniqueId(guid),
        group=GROUP,
        ap=NodeId(ap),
        luid=make_luid(ap, guid, epoch),
        status=status,
    )


@st.composite
def token_operations(draw) -> TokenOperation:
    op_type = draw(
        st.sampled_from(
            [
                TokenOperationType.MEMBER_JOIN,
                TokenOperationType.MEMBER_LEAVE,
                TokenOperationType.MEMBER_HANDOFF,
                TokenOperationType.MEMBER_FAILURE,
            ]
        )
    )
    guid = draw(st.sampled_from(GUIDS))
    ap = draw(st.sampled_from(APS))
    epoch = draw(st.integers(min_value=1, max_value=5))
    status = {
        TokenOperationType.MEMBER_JOIN: MemberStatus.OPERATIONAL,
        TokenOperationType.MEMBER_HANDOFF: MemberStatus.OPERATIONAL,
        TokenOperationType.MEMBER_LEAVE: MemberStatus.LEFT,
        TokenOperationType.MEMBER_FAILURE: MemberStatus.FAILED,
    }[op_type]
    previous_ap = None
    if op_type is TokenOperationType.MEMBER_HANDOFF:
        previous_ap = NodeId(draw(st.sampled_from(APS)))
    return TokenOperation(
        op_type=op_type,
        origin=NodeId(ap),
        member=_member(guid, ap, epoch, status),
        previous_ap=previous_ap,
        sequence=draw(st.integers(min_value=1, max_value=10_000)),
    )


operation_sequences = st.lists(token_operations(), min_size=0, max_size=30)


def _fresh_view(name: str = "ring") -> MembershipView:
    return MembershipView(name, NodeId("observer"), GROUP)


class TestDeltaEquivalence:
    @given(operation_sequences)
    @settings(max_examples=200)
    def test_apply_all_delta_matches_sequential_apply(self, operations):
        """Acceptance: batched apply_all == per-operation apply, any sequence."""
        sequential = _fresh_view()
        for op in operations:
            sequential.apply(op, time=1.0)

        batched = _fresh_view()
        batched.apply_all(MembershipDelta.from_operations(operations), time=1.0)

        assert batched.snapshot() == sequential.snapshot()
        assert batched.guids() == sequential.guids()

    @given(operation_sequences, operation_sequences)
    @settings(max_examples=100)
    def test_equivalence_from_arbitrary_starting_view(self, seed_ops, operations):
        """The equivalence holds regardless of what the view already contains."""
        sequential = _fresh_view()
        batched = _fresh_view()
        for op in seed_ops:
            sequential.apply(op, time=0.0)
            batched.apply(op, time=0.0)

        for op in operations:
            sequential.apply(op, time=1.0)
        batched.apply_all(MembershipDelta.from_operations(operations), time=1.0)
        assert batched.snapshot() == sequential.snapshot()

    @given(operation_sequences)
    @settings(max_examples=100)
    def test_apply_all_accepts_sequences_and_deltas_identically(self, operations):
        """apply_all(list) and apply_all(delta) land on the same member list."""
        via_list = _fresh_view()
        via_list.apply_all(list(operations), time=2.0)
        via_delta = _fresh_view()
        via_delta.apply_all(MembershipDelta.from_operations(operations), time=2.0)
        assert via_delta.snapshot() == via_list.snapshot()

    @given(operation_sequences)
    @settings(max_examples=100)
    def test_delta_compilation_is_idempotent_per_guid(self, operations):
        """A compiled delta has at most one entry per member GUID."""
        delta = MembershipDelta.from_operations(operations)
        guids = delta.guids()
        assert len(guids) == len(set(guids))
        # Re-applying the same delta is a no-op (idempotent delivery).
        view = _fresh_view()
        view.apply_all(delta, time=0.0)
        first = view.snapshot()
        events = view.apply_all(delta, time=1.0)
        assert view.snapshot() == first
        assert events == []

    @given(operation_sequences)
    @settings(max_examples=100)
    def test_builder_incremental_equals_bulk_compile(self, operations):
        builder = DeltaBuilder()
        for op in operations:
            builder.add(op)
        incremental = builder.build()
        bulk = MembershipDelta.from_operations(operations)
        assert incremental.guids() == bulk.guids()
        assert [e.resolved for e in incremental.entries] == [e.resolved for e in bulk.entries]
