"""Property suite for the declarative scenario subsystem.

The contracts under test (``repro.workloads.spec``):

* **Round-trip.**  A :class:`ScenarioSpec` serialised to JSON and parsed back
  compiles to the *identical* fault script, and a compiled
  :class:`FaultScript` survives ``dumps``/``loads`` byte-for-byte — specs and
  scripts are pure data, so the wire format loses nothing.
* **Replay.**  A recorded fault script replays to a bit-identical run
  fingerprint (``record_fingerprint``), sequentially and through the pool
  (``--jobs 4``): replaying consumes only event data, never a family RNG
  stream.
* **Diagnosability.**  Unknown families and unknown family params fail at
  compile time with errors that *list* the valid choices.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.workloads.matrix import (
    MatrixCell,
    get_scenario,
    replay_script,
    run_matrix_cell,
    scenario_names,
)
from repro.workloads.parallel import result_fingerprint, run_cells
from repro.workloads.spec import (
    CompileContext,
    FaultScript,
    PASS_PIPELINE,
    ScenarioFamily,
    ScenarioSpec,
    ScriptEvent,
    SpecError,
    available_families,
    compile_spec,
    main as spec_main,
)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

FAMILIES = ("flash_crowd", "correlated_failure", "diurnal_mobility", "replay_injection")


# ---------------------------------------------------------------------------
# hypothesis: spec -> JSON -> parse -> compile round-trips identically
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    family=st.sampled_from(FAMILIES),
    seed=st.integers(min_value=0, max_value=100_000),
    events=st.integers(min_value=1, max_value=24),
    loss=st.sampled_from((0.0, 0.05)),
)
def test_spec_json_roundtrip_compiles_identically(family, seed, events, loss):
    spec = ScenarioSpec(family=family, num_proxies=16, loss=loss, seed=seed, events=events)
    wire = json.dumps(spec.to_json(), sort_keys=True)
    parsed = ScenarioSpec.from_json(json.loads(wire))
    assert parsed == spec
    original = compile_spec(spec)
    reparsed = compile_spec(parsed)
    assert original.script.to_json() == reparsed.script.to_json()
    assert (original.ring_size, original.height) == (reparsed.ring_size, reparsed.height)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    family=st.sampled_from(FAMILIES),
    seed=st.integers(min_value=0, max_value=100_000),
    events=st.integers(min_value=1, max_value=24),
)
def test_script_dumps_loads_roundtrip(family, seed, events):
    script = compile_spec(
        ScenarioSpec(family=family, num_proxies=16, seed=seed, events=events)
    ).script
    recovered = FaultScript.loads(script.dumps())
    assert recovered.to_json() == script.to_json()
    assert recovered.events == script.events
    # The full source spec rides in the provenance (the replay contract
    # reconstructs the cell from it alone).
    assert ScenarioSpec.from_json(recovered.provenance["spec"]) == ScenarioSpec(
        family=family, num_proxies=16, seed=seed, events=events
    )


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    family=st.sampled_from(FAMILIES),
    seed=st.integers(min_value=0, max_value=100_000),
)
def test_compile_is_deterministic_and_time_sorted(family, seed):
    spec = ScenarioSpec(family=family, num_proxies=16, seed=seed, events=12)
    a = compile_spec(spec).script
    b = compile_spec(spec).script
    assert a.to_json() == b.to_json()
    times = [event.time for event in a.events]
    assert times == sorted(times)
    # Every stream the family drew from is recorded, namespaced to it.
    for name in a.provenance["streams"]:
        assert name.startswith(f"family.{family}.")


# ---------------------------------------------------------------------------
# validation: unknown families / params / malformed events fail loudly
# ---------------------------------------------------------------------------


class TestValidation:
    def test_unknown_family_lists_available(self):
        with pytest.raises(SpecError) as err:
            compile_spec(ScenarioSpec(family="nope", num_proxies=16))
        for name in FAMILIES:
            assert name in str(err.value)

    def test_unknown_param_lists_valid_knobs(self):
        spec = ScenarioSpec(family="flash_crowd", num_proxies=16, params={"typo": 1})
        with pytest.raises(SpecError) as err:
            compile_spec(spec)
        assert "typo" in str(err.value)
        assert "fraction" in str(err.value)

    def test_matrix_unknown_scenario_lists_available(self):
        with pytest.raises(ValueError) as err:
            get_scenario("nope")
        assert "churn" in str(err.value)
        assert "flash_crowd" in str(err.value)

    def test_families_registered_as_matrix_scenarios(self):
        names = scenario_names()
        for family in FAMILIES:
            assert family in names
        assert set(available_families()) == set(FAMILIES)

    def test_event_validation(self):
        with pytest.raises(SpecError):
            ScriptEvent(time=1.0, kind="teleport")
        with pytest.raises(SpecError):
            ScriptEvent(time=-1.0, kind="join", member="m", site=0)
        with pytest.raises(SpecError):
            ScriptEvent(time=1.0, kind="join", member="m")  # no site
        with pytest.raises(SpecError):
            ScriptEvent(time=1.0, kind="leave")  # no member
        with pytest.raises(SpecError):
            ScriptEvent(time=1.0, kind="crash", site=0, tier=0)

    def test_finalize_rejects_out_of_range_site_and_tier(self):
        class Rogue(ScenarioFamily):
            name = "rogue"
            defaults = {"mode": "site"}

            def build_workload(self, ctx: CompileContext) -> None:
                if ctx.params["mode"] == "site":
                    ctx.emit(0.0, "join", member="m", site=ctx.num_sites)
                else:
                    ctx.emit(0.0, "crash", site=0, tier=ctx.height + 1)

        ctx = CompileContext(spec=ScenarioSpec(family="flash_crowd", num_proxies=16))
        for _name, pass_fn in PASS_PIPELINE[:2]:
            pass_fn(ctx)
        rogue = Rogue()
        ctx.family = rogue
        ctx.params = {"mode": "site"}
        rogue.build_workload(ctx)
        with pytest.raises(SpecError, match="site"):
            PASS_PIPELINE[-1][1](ctx)
        ctx.events.clear()
        ctx.params = {"mode": "tier"}
        rogue.build_workload(ctx)
        with pytest.raises(SpecError, match="tier"):
            PASS_PIPELINE[-1][1](ctx)

    def test_script_version_gate(self):
        script = compile_spec(ScenarioSpec(family="flash_crowd", num_proxies=16)).script
        data = script.to_json()
        data["version"] = 99
        with pytest.raises(SpecError, match="version"):
            FaultScript.from_json(data)


# ---------------------------------------------------------------------------
# replay: recorded scripts reproduce bit-identical fingerprints
# ---------------------------------------------------------------------------


class TestReplayContract:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_recorded_script_replays_bit_identically(self, family):
        spec = ScenarioSpec(family=family, num_proxies=16, seed=3, events=10)
        compiled = compile_spec(spec)
        cell = MatrixCell(scenario=family, num_proxies=16, loss=0.0, seed=3)
        fresh = run_matrix_cell(cell, events=10, script=compiled.script)
        # Through the wire: serialise, parse, replay from provenance alone.
        replayed = replay_script(FaultScript.loads(compiled.script.dumps()))
        assert result_fingerprint(replayed) == result_fingerprint(fresh)

    def test_replay_across_toy_protocols_is_deterministic(self):
        script = compile_spec(
            ScenarioSpec(family="correlated_failure", num_proxies=16, seed=1, events=10)
        ).script
        for protocol in ("gossip", "tree", "flat_ring"):
            a = result_fingerprint(replay_script(script, protocol=protocol))
            b = result_fingerprint(replay_script(script, protocol=protocol))
            assert a == b


@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
def test_family_cells_jobs4_bit_identical_to_jobs1():
    cells = [
        MatrixCell(scenario=family, num_proxies=16, loss=0.0, seed=0)
        for family in FAMILIES
    ]
    sequential = run_cells(cells, events=10, jobs=1)
    parallel = run_cells(cells, events=10, jobs=4)
    assert sequential.ok and parallel.ok
    assert [result_fingerprint(r) for r in sequential.results] == [
        result_fingerprint(r) for r in parallel.results
    ]


# ---------------------------------------------------------------------------
# CLI: compile --out then --run round-trips through a script file
# ---------------------------------------------------------------------------


class TestCli:
    def test_list(self, capsys):
        assert spec_main(["--list"]) == 0
        out = capsys.readouterr().out
        for family in FAMILIES:
            assert family in out

    def test_compile_and_run(self, tmp_path, capsys):
        path = tmp_path / "fc.script.json"
        assert (
            spec_main(
                [
                    "--family",
                    "flash_crowd",
                    "--proxies",
                    "16",
                    "--events",
                    "8",
                    "--param",
                    "fraction=0.25",
                    "--out",
                    str(path),
                ]
            )
            == 0
        )
        script = FaultScript.loads(path.read_text())
        assert script.family == "flash_crowd"
        assert script.provenance["params"]["fraction"] == 0.25
        assert spec_main(["--run", str(path), "--protocol", "gossip"]) == 0
        out = capsys.readouterr().out
        assert "flash_crowd/gossip" in out
