"""Tests for the RGBSimulation facade and the workload generators."""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig
from repro.core.query import MembershipScheme
from repro.core.simulation import RGBSimulation, SimulationNotBuilt
from repro.workloads.churn import ChurnKind, ChurnWorkload
from repro.workloads.handoffs import HandoffStorm
from repro.workloads.queries import QueryWorkload


class TestFacadeConstruction:
    def test_requires_build_before_use(self):
        sim = RGBSimulation(SimulationConfig(num_aps=8, ring_size=3))
        with pytest.raises(SimulationNotBuilt):
            sim.join_member()

    def test_participating_ap_count_matches_config(self, structural_sim):
        assert len(structural_sim.access_proxies()) == 12

    def test_rings_respect_ring_size(self, structural_sim):
        for ap in structural_sim.access_proxies():
            assert len(structural_sim.ring_of(ap)) <= 4

    def test_hierarchy_is_valid(self, structural_sim):
        structural_sim.hierarchy.validate()

    def test_hosts_per_ap_preattached(self):
        sim = RGBSimulation(SimulationConfig(num_aps=6, ring_size=3, hosts_per_ap=2, seed=1)).build()
        assert len(sim.global_membership()) == 12

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_aps=0)
        with pytest.raises(ValueError):
            SimulationConfig(ring_size=1)
        with pytest.raises(ValueError):
            SimulationConfig(engine_mode="quantum")


class TestFacadeOperations:
    def test_join_leave_cycle(self, structural_sim):
        member = structural_sim.join_member(ap_index=0, guid="alice")
        structural_sim.run_until_quiescent()
        assert member.guid in structural_sim.global_membership()
        structural_sim.leave_member("alice")
        structural_sim.run_until_quiescent()
        assert "alice" not in structural_sim.global_membership()

    def test_fail_member(self, structural_sim):
        structural_sim.join_member(ap_index=1, guid="bob")
        structural_sim.run_until_quiescent()
        structural_sim.fail_member("bob")
        structural_sim.run_until_quiescent()
        assert "bob" not in structural_sim.global_membership()

    def test_unknown_member_operations_rejected(self, structural_sim):
        with pytest.raises(ValueError):
            structural_sim.leave_member("ghost")
        with pytest.raises(ValueError):
            structural_sim.handoff_member("ghost", structural_sim.access_proxies()[0])

    def test_handoff_updates_location(self, structural_sim):
        aps = structural_sim.access_proxies()
        structural_sim.join_member(ap_id=aps[0], guid="alice")
        structural_sim.run_until_quiescent()
        record = structural_sim.handoff_member("alice", aps[1])
        structural_sim.run_until_quiescent()
        assert record.to_ap == aps[1]
        stats = structural_sim.handoff_statistics()
        assert stats["handoffs"] == 1.0

    def test_query_schemes_agree(self, structural_sim):
        for i in range(4):
            structural_sim.join_member(ap_index=i)
        structural_sim.run_until_quiescent()
        tms = structural_sim.query(MembershipScheme.TMS)
        bms = structural_sim.query(MembershipScheme.BMS)
        assert tms.guids == bms.guids
        assert len(tms) == 4

    def test_membership_events_filtered_to_top_leader(self, structural_sim):
        structural_sim.join_member(ap_index=0, guid="alice")
        structural_sim.run_until_quiescent()
        events = structural_sim.membership_events()
        assert len(events) == 1
        assert str(events[0].member.guid) == "alice"

    def test_crash_entity_and_partition_report(self, structural_sim):
        aps = structural_sim.access_proxies()
        structural_sim.join_member(ap_id=aps[0], guid="alice")
        structural_sim.run_until_quiescent()
        structural_sim.crash_entity(aps[1])
        structural_sim.join_member(ap_id=aps[0], guid="bob")
        structural_sim.run_until_quiescent()
        report = structural_sim.partition_report()
        assert report.count == 1
        assert "alice" in structural_sim.global_membership()

    def test_metric_snapshot_has_round_counters(self, structural_sim):
        structural_sim.join_member(ap_index=0)
        structural_sim.run_until_quiescent()
        snapshot = structural_sim.metric_snapshot()
        assert snapshot["counter.rounds.completed"] > 0

    def test_ap_index_out_of_range(self, structural_sim):
        with pytest.raises(ValueError):
            structural_sim.join_member(ap_index=99)
        with pytest.raises(ValueError):
            structural_sim.join_member(ap_id="not-an-ap")

    def test_mobility_trace_replay(self, structural_sim):
        model = structural_sim.default_mobility_model(mean_residency=50.0, mean_session=150.0)
        trace = model.generate_population(num_hosts=5, arrival_rate=1.0, horizon=200.0)
        counts = structural_sim.apply_mobility_trace(trace)
        assert counts["joins"] == 5
        assert counts["joins"] - counts["leaves"] == len(structural_sim.global_membership())


class TestWorkloads:
    def test_churn_population_consistency(self):
        workload = ChurnWorkload(ap_ids=["a", "b", "c"], join_rate=1.0, leave_rate=0.01, horizon=100.0, seed=4)
        events = workload.generate()
        population = set()
        for event in events:
            if event.kind is ChurnKind.JOIN:
                assert event.member not in population
                population.add(event.member)
            else:
                assert event.member in population
                population.remove(event.member)
        summary = ChurnWorkload.summarize(events)
        assert summary["total"] == len(events)
        assert summary["join"] >= summary["leave"] + summary["failure"]

    def test_churn_events_are_time_ordered(self):
        events = ChurnWorkload(ap_ids=["a"], join_rate=2.0, horizon=50.0, seed=1).generate()
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(t <= 50.0 for t in times)

    def test_churn_validation(self):
        with pytest.raises(ValueError):
            ChurnWorkload(ap_ids=[], join_rate=1.0)
        with pytest.raises(ValueError):
            ChurnWorkload(ap_ids=["a"], join_rate=0.0)

    def test_handoff_storm_locality(self):
        attachment = {f"m{i}": "ap-0" for i in range(10)}
        neighbors = {"ap-0": ["ap-1"], "ap-1": ["ap-0"], "ap-2": []}
        storm = HandoffStorm(
            attachment=attachment, neighbor_map=neighbors, handoffs=200, locality=1.0, seed=2
        )
        events = storm.generate()
        assert events
        assert HandoffStorm.locality_ratio(events) > 0.9

    def test_handoff_storm_moves_members_consistently(self):
        attachment = {"m0": "ap-0", "m1": "ap-1"}
        neighbors = {"ap-0": ["ap-1", "ap-2"], "ap-1": ["ap-0"], "ap-2": ["ap-0"]}
        storm = HandoffStorm(attachment=attachment, neighbor_map=neighbors, handoffs=50, seed=3)
        events = storm.generate()
        location = dict(attachment)
        for event in events:
            assert location[event.member] == event.from_ap
            location[event.member] = event.to_ap

    def test_handoff_storm_validation(self):
        with pytest.raises(ValueError):
            HandoffStorm(attachment={}, neighbor_map={}, handoffs=10)
        with pytest.raises(ValueError):
            HandoffStorm(attachment={"m": "a"}, neighbor_map={}, locality=2.0)

    def test_query_workload_replay(self, structural_sim):
        for i in range(3):
            structural_sim.join_member(ap_index=i)
        structural_sim.run_until_quiescent()
        workload = QueryWorkload(entry_points=structural_sim.access_proxies(), queries=12, seed=5)
        requests = workload.generate()
        assert len(requests) == 12
        aggregates = QueryWorkload.replay(structural_sim.protocol, requests)
        assert aggregates
        for bucket in aggregates.values():
            assert bucket["mean_members"] == 3.0

    def test_query_workload_validation(self):
        with pytest.raises(ValueError):
            QueryWorkload(entry_points=[], queries=5)
        with pytest.raises(ValueError):
            QueryWorkload(entry_points=["a"], queries=0)
