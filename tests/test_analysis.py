"""Tests for the analytical models: Table I, Table II, Monte-Carlo validation."""

from __future__ import annotations

import pytest

from repro.analysis.hopcount_sim import measure_ring_hopcount
from repro.analysis.montecarlo import (
    simulate_hierarchy_function_well,
    simulate_tree_function_well,
)
from repro.analysis.reliability import (
    TABLE2_PAPER_VALUES,
    headline_claims,
    hierarchy_function_well_probability,
    ring_function_well_probability,
    table2_rows,
    tree_function_well_probability,
)
from repro.analysis.scalability import (
    TABLE1_PAPER_VALUES,
    hcn_ring,
    hcn_tree,
    hcn_tree_without_representatives,
    hopcount_removed_tree,
    hopcount_ring,
    hopcount_tree,
    max_ring_to_tree_ratio,
    ring_access_proxy_count,
    ring_total_rings,
    table1_rows,
    tree_leaf_count,
)
from repro.analysis.tables import render_claims, render_table1, render_table2


class TestScalabilityFormulas:
    @pytest.mark.parametrize("n,tree,ring", TABLE1_PAPER_VALUES)
    def test_table1_matches_paper_exactly(self, n, tree, ring):
        rows = {row.n: row for row in table1_rows()}
        assert rows[n].hcn_tree == tree
        assert rows[n].hcn_ring == ring

    def test_tree_without_representatives_is_edge_count(self):
        # Formula (1)/n: sum of r^(i+1) = number of edges of the complete tree.
        assert hcn_tree_without_representatives(3, 5) == 30
        assert hcn_tree_without_representatives(4, 5) == 155

    def test_representatives_strictly_reduce_hops(self):
        for h, r in [(3, 5), (4, 5), (5, 5), (3, 10), (4, 10)]:
            assert hcn_tree(h, r) < hcn_tree_without_representatives(h, r)
            assert hopcount_removed_tree(h, r) > 0

    def test_total_hopcounts_are_n_times_normalised(self):
        assert hopcount_tree(3, 5) == 25 * hcn_tree(3, 5)
        assert hopcount_ring(2, 5) == 25 * hcn_ring(2, 5)

    def test_ring_structure_counts(self):
        assert ring_access_proxy_count(3, 5) == 125
        assert ring_total_rings(3, 5) == 31
        assert tree_leaf_count(4, 5) == 125

    def test_hcn_ring_closed_form(self):
        assert hcn_ring(2, 5) == 35
        assert hcn_ring(3, 10) == 1220

    def test_ring_tree_ratio_is_comparable(self):
        # The paper's comparability claim: the ring hierarchy costs at most
        # ~25% more hops than the tree hierarchy across Table I.
        assert max_ring_to_tree_ratio() < 1.3

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            hcn_tree(2, 5)
        with pytest.raises(ValueError):
            hcn_ring(1, 5)
        with pytest.raises(ValueError):
            hcn_ring(2, 1)

    def test_invalid_table_configuration_rejected(self):
        with pytest.raises(ValueError):
            table1_rows([(30, 3, 2, 5)])


class TestMeasuredHopCounts:
    @pytest.mark.parametrize("height,ring_size", [(2, 3), (2, 5), (3, 3)])
    def test_measured_equals_formula(self, height, ring_size):
        measurement = measure_ring_hopcount(height, ring_size, changes=2)
        assert measurement.measured_hops_per_change == measurement.analytical_hcn
        assert measurement.relative_error == 0.0

    def test_acks_not_included_in_headline_count(self):
        measurement = measure_ring_hopcount(2, 3, changes=1)
        assert measurement.ack_hops >= 0
        assert measurement.measured_hops_per_change == measurement.token_hops + measurement.notify_hops

    def test_invalid_changes(self):
        with pytest.raises(ValueError):
            measure_ring_hopcount(2, 3, changes=0)


class TestReliabilityFormulas:
    def test_ring_function_well_closed_form(self):
        # (1 - f + r f)(1 - f)^(r-1)
        assert ring_function_well_probability(5, 0.0) == 1.0
        assert ring_function_well_probability(5, 0.001) == pytest.approx(
            (1 - 0.001 + 5 * 0.001) * (1 - 0.001) ** 4
        )

    def test_ring_probability_decreases_with_faults_and_size(self):
        assert ring_function_well_probability(5, 0.01) > ring_function_well_probability(5, 0.05)
        assert ring_function_well_probability(5, 0.01) > ring_function_well_probability(20, 0.01)

    def test_hierarchy_probability_monotone_in_k(self):
        values = [
            hierarchy_function_well_probability(3, 10, 0.005, k) for k in (1, 2, 3, 4)
        ]
        assert values == sorted(values)

    @pytest.mark.parametrize("n,f_percent,k,paper", TABLE2_PAPER_VALUES)
    def test_table2_matches_paper_within_tolerance(self, n, f_percent, k, paper):
        ring_size = 5 if n == 125 else 10
        computed = 100.0 * hierarchy_function_well_probability(3, ring_size, f_percent / 100.0, k)
        # The paper's k=1 rows match to ~0.35 percentage points; the k>=2 rows
        # show slightly larger deviations (the paper's own rounding), but all
        # stay within 1.5 percentage points.
        assert computed == pytest.approx(paper, abs=1.5)
        if k == 1:
            assert computed == pytest.approx(paper, abs=0.4)

    def test_headline_claims(self):
        claims = headline_claims()
        assert 100 * claims["no_partition_probability"] == pytest.approx(99.5, abs=0.05)
        assert 100 * claims["at_most_3_partitions_probability"] > 99.99

    def test_tree_reliability_lower_than_ring(self):
        for f in (0.001, 0.005, 0.02):
            ring = hierarchy_function_well_probability(3, 5, f, 1)
            tree = tree_function_well_probability(4, 5, f, 1)
            assert ring > tree

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            ring_function_well_probability(5, 1.5)
        with pytest.raises(ValueError):
            hierarchy_function_well_probability(3, 5, 0.01, 0)
        with pytest.raises(ValueError):
            tree_function_well_probability(2, 5, 0.01)

    def test_table2_rows_cover_paper_grid(self):
        rows = table2_rows()
        assert len(rows) == 18
        assert {row.n for row in rows} == {125, 1000}


class TestMonteCarlo:
    def test_ring_monte_carlo_matches_analytical(self):
        analytical = hierarchy_function_well_probability(2, 4, 0.02, 1)
        result = simulate_hierarchy_function_well(
            2, 4, 0.02, max_partitions=1, trials=800, seed=11, analytical=analytical
        )
        assert result.trials == 800
        assert result.within(sigmas=5.0, floor=0.03)

    def test_ring_monte_carlo_k3_is_higher_than_k1(self):
        k1 = simulate_hierarchy_function_well(2, 4, 0.05, 1, trials=500, seed=2)
        k3 = simulate_hierarchy_function_well(2, 4, 0.05, 3, trials=500, seed=2)
        assert k3.estimate >= k1.estimate

    def test_tree_monte_carlo_is_less_reliable_than_ring(self):
        ring = simulate_hierarchy_function_well(2, 4, 0.05, 1, trials=600, seed=5)
        tree = simulate_tree_function_well(3, 4, 0.05, 1, trials=600, seed=5)
        assert ring.estimate > tree.estimate

    def test_zero_fault_probability_always_functions_well(self):
        result = simulate_hierarchy_function_well(2, 3, 0.0, 1, trials=50, seed=1)
        assert result.estimate == 1.0

    def test_trials_validation(self):
        with pytest.raises(ValueError):
            simulate_hierarchy_function_well(2, 3, 0.01, trials=0)


class TestTableRendering:
    def test_table1_text_contains_paper_values(self):
        text = render_table1()
        assert "11000" in text and "12220" in text

    def test_table2_text_contains_configurations(self):
        text = render_table2()
        assert "1000" in text and "99.5" in text

    def test_claims_text(self):
        assert "99.500%" in render_claims()

    def test_cli_main(self, capsys):
        from repro.analysis.tables import main

        assert main(["table1"]) == 0
        captured = capsys.readouterr()
        assert "Table I" in captured.out


class TestFamilyHeadToHead:
    def test_renders_costs_and_flags_membership_disagreement(self):
        from repro.analysis.tables import render_family_head_to_head
        from repro.baselines.driver import PROTOCOL_NAMES
        from repro.workloads.matrix import MatrixCell, run_ablation_cell

        records = [
            run_ablation_cell(
                MatrixCell(
                    scenario="replay_injection",
                    num_proxies=16,
                    loss=0.0,
                    seed=0,
                    protocol=protocol,
                ),
                events=8,
            ).record
            for protocol in PROTOCOL_NAMES
        ]
        text = render_family_head_to_head(records)
        assert "replay_injection" in text
        for protocol in PROTOCOL_NAMES:
            assert protocol in text
        # Injections are accounted per protocol and the resurrection
        # disagreement between RGB and the toys is called out, not hidden.
        assert "inject" in text
        assert "membership DISAGREE" in text
