"""Serving-layer tests: snapshot consistency, routing memoisation, load gen.

The contract under test (see ``docs/ARCHITECTURE.md``):

* a batched snapshot read during in-flight rounds equals a stop-the-world
  object-path read at the same instant — for all three schemes, both kernel
  backends, and at every round-commit point (no torn reads);
* results already served from a frame are immutable — later rounds never
  reach into them;
* query routing (entry tier, per-tier leader fan-out, topmost leader) is
  memoised per topology epoch and re-derived after repair surgery.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ProtocolConfig
from repro.core.hierarchy import HierarchyBuilder
from repro.core.one_round import OneRoundEngine
from repro.core.query import MembershipQueryService, MembershipScheme
from repro.serving.columnar_query import tier_leader_fanout
from repro.sim.harness import HarnessConfig, ScenarioHarness
from repro.workloads.query_load import (
    QueryLoadConfig,
    QueryLoadGenerator,
    run_query_load,
)

SCHEMES = tuple(MembershipScheme)


def _harness(ring_size: int, height: int, backend: str) -> ScenarioHarness:
    return ScenarioHarness(
        HarnessConfig(ring_size=ring_size, height=height, backend=backend)
    )


def _assert_same_answer(got, want) -> None:
    assert got.scheme is want.scheme
    assert got.guids == want.guids
    assert got.members == want.members
    assert got.message_hops == want.message_hops
    assert got.entities_contacted == want.entities_contacted
    assert got.answered_by_tier == want.answered_by_tier


class TestSnapshotEqualsObjectPath:
    """The hypothesis pin: snapshot batch read == stop-the-world object read."""

    @given(
        ring_size=st.integers(min_value=2, max_value=3),
        height=st.integers(min_value=2, max_value=3),
        backend=st.sampled_from(("object", "columnar")),
        joins=st.integers(min_value=1, max_value=6),
        run_fraction=st.sampled_from((0.3, 0.7, 1.0)),
    )
    @settings(max_examples=10, deadline=None)
    def test_batch_read_matches_object_path_mid_flight(
        self, ring_size, height, backend, joins, run_fraction
    ):
        harness = _harness(ring_size, height, backend)
        aps = harness.access_proxies()
        horizon = 0.2 * joins
        for index in range(joins):
            harness.schedule_join(0.2 * (index + 1), aps[index % len(aps)])
        if joins > 2:
            harness.schedule_leave(horizon + 0.2, "member-0001")
        # Stop mid-horizon: captured operations and scheduled rounds are
        # still in flight — exactly when torn reads would happen.
        harness.run(until=horizon * run_fraction)

        frontend = harness.serving_frontend()
        service = MembershipQueryService(harness.kernel, entry_point=aps[0])
        for scheme in SCHEMES:
            frontend.submit(scheme, aps[0])
        batch = frontend.drain()
        for scheme, got in zip(SCHEMES, batch):
            _assert_same_answer(got, service.query(scheme))

        # Quiesce and compare again: the frames must revalidate/recapture.
        harness.run()
        for scheme in SCHEMES:
            _assert_same_answer(
                frontend.query(scheme, aps[0]), service.query(scheme)
            )

    @pytest.mark.parametrize("backend", ("object", "columnar"))
    def test_every_round_commit_point_matches_object_path(self, backend):
        """No torn reads: probe at every commit, the only mutation points."""
        harness = _harness(3, 2, backend)
        aps = harness.access_proxies()
        service = MembershipQueryService(harness.kernel, entry_point=aps[0])
        frontend = harness.serving_frontend()
        probes = []

        def probe(ring_id: str, now: float) -> None:
            for scheme in SCHEMES:
                got = frontend.query(scheme, aps[0])
                want = service.query(scheme)
                probes.append(
                    (now, scheme.name, got.guids == want.guids,
                     got.message_hops == want.message_hops)
                )

        harness.add_round_listener(probe)
        for index in range(5):
            harness.schedule_join(0.3 * (index + 1), aps[index % len(aps)])
        harness.schedule_leave(2.0, "member-0001")
        harness.schedule_failure(2.5, "member-0002")
        harness.run()
        assert probes, "no rounds committed — the probe never ran"
        bad = [p for p in probes if not (p[2] and p[3])]
        assert not bad, f"snapshot read diverged from object path at: {bad[:3]}"


class TestTornReadRegression:
    def test_served_results_are_frozen_pre_round_frames(self):
        harness = _harness(3, 2, "columnar")
        aps = harness.access_proxies()
        harness.schedule_join(0.1, aps[0], guid="alice")
        harness.schedule_join(0.2, aps[1], guid="bob")
        harness.run()
        frontend = harness.serving_frontend()
        before = frontend.query(MembershipScheme.BMS)
        assert before.guids == ["alice", "bob"]

        # A later round commits carol; the already-served result must keep
        # showing the pre-round frame, never a mix.
        harness.schedule_join(harness.engine.now + 0.1, aps[2], guid="carol")
        harness.run()
        assert before.guids == ["alice", "bob"]
        assert sorted(m.guid.value for m in before.members) == ["alice", "bob"]

        # A fresh read sees the whole post-round frame and matches the
        # object path; the stale frame was counted as an invalidation.
        after = frontend.query(MembershipScheme.BMS)
        want = MembershipQueryService(harness.kernel).query(MembershipScheme.BMS)
        _assert_same_answer(after, want)
        assert after.guids == ["alice", "bob", "carol"]
        assert frontend.stats()["invalidations"] >= 1

    def test_snapshot_reuse_across_batches_until_a_round_commits(self):
        harness = _harness(3, 2, "columnar")
        aps = harness.access_proxies()
        harness.schedule_join(0.1, aps[0], guid="alice")
        harness.run()
        frontend = harness.serving_frontend()
        for _ in range(3):
            for scheme in SCHEMES:
                frontend.submit(scheme)
            frontend.drain()
        stats = frontend.stats()
        # One capture per distinct frame; every later batch reuses them
        # without any version reads (no rounds committed in between).
        assert stats["captures"] <= len(SCHEMES)
        assert stats["hits"] >= 2 * len(SCHEMES)
        assert stats["invalidations"] == 0


class TestRoutingMemoisation:
    def _engine(self, ring_size=3, height=2) -> OneRoundEngine:
        hierarchy = HierarchyBuilder("serving-test").regular(
            ring_size=ring_size, height=height
        )
        return OneRoundEngine(hierarchy, config=ProtocolConfig(aggregation_delay=0.0))

    def test_tier_leaders_cached_per_epoch(self):
        engine = self._engine()
        service = MembershipQueryService(engine)
        bottom = engine.hierarchy.bottom_tier()
        first = service.tier_leaders(bottom)
        assert service.tier_leaders(bottom) is first  # memo hit, same epoch

    def test_repaired_ring_is_rerouted(self):
        """Satellite regression: a repair must invalidate the routing memo."""
        engine = self._engine()
        ring = engine.hierarchy.bottom_rings()[0]
        leader = ring.leader
        survivor = next(m for m in ring.members if m != leader)
        # Entry at a survivor: the failed leader leaves the hierarchy, and a
        # dead entry point raises on the object path and serving path alike.
        service = MembershipQueryService(engine, entry_point=survivor)
        engine.member_join(survivor, "bob")
        engine.propagate()
        before = service.query(MembershipScheme.BMS)
        assert leader in before.entities_contacted  # memo is warm

        engine.fail_entity(leader)
        engine.member_join(survivor, "carol")
        engine.propagate()  # repair surgery re-elects the ring leader
        assert ring.leader is not None and ring.leader != leader

        after = service.query(MembershipScheme.BMS)
        assert leader not in after.entities_contacted
        assert ring.leader in after.entities_contacted
        # A cold service (no memo to go stale) agrees exactly.
        _assert_same_answer(
            after,
            MembershipQueryService(engine, entry_point=survivor).query(MembershipScheme.BMS),
        )

    def test_frontend_reroutes_after_repair(self):
        engine = self._engine()
        frontend_engine = engine  # OneRoundEngine: kernel + hierarchy, no listener
        from repro.serving.frontend import ServingFrontend

        frontend = ServingFrontend(frontend_engine)
        ring = engine.hierarchy.bottom_rings()[0]
        leader = ring.leader
        survivor = next(m for m in ring.members if m != leader)
        engine.member_join(survivor, "bob")
        engine.propagate()
        assert leader in frontend.query(
            MembershipScheme.BMS, survivor
        ).entities_contacted

        engine.fail_entity(leader)
        engine.member_join(survivor, "carol")
        engine.propagate()
        after = frontend.query(MembershipScheme.BMS, survivor)
        assert leader not in after.entities_contacted
        assert ring.leader in after.entities_contacted
        _assert_same_answer(
            after,
            MembershipQueryService(engine, entry_point=survivor).query(MembershipScheme.BMS),
        )


class TestColumnarFanout:
    def test_columnar_fanout_matches_hierarchy_walk(self):
        harness = _harness(3, 3, "columnar")
        aps = harness.access_proxies()
        for index in range(4):
            harness.schedule_join(0.2 * (index + 1), aps[index % len(aps)])
        harness.run()
        kernel, hierarchy = harness.kernel, harness.hierarchy
        for tier in hierarchy.tiers():
            leaders, rings, views = tier_leader_fanout(kernel, hierarchy, tier)
            want = [
                ring.leader
                for ring in hierarchy.rings_in_tier(tier)
                if ring.leader is not None
            ]
            assert leaders == want
            assert [r.ring_id for r in rings] == [
                ring.ring_id
                for ring in hierarchy.rings_in_tier(tier)
                if ring.leader is not None
            ]
            for leader, view in zip(leaders, views):
                assert view is kernel.entity(leader).ring_members

    def test_dirty_structure_falls_back_to_object_walk(self):
        harness = _harness(3, 2, "columnar")
        aps = harness.access_proxies()
        harness.schedule_join(0.1, aps[0], guid="alice")
        harness.run()
        # Surgery: fail a leader and let repair re-shape the hierarchy.
        ring = harness.hierarchy.bottom_rings()[0]
        victim = ring.leader
        harness.kernel.fail_entity(victim, now=harness.engine.now)
        harness.kernel.detect_and_repair(victim, now=harness.engine.now)
        assert harness.kernel.store.structure_dirty
        tier = harness.hierarchy.bottom_tier()
        leaders, _rings, _views = tier_leader_fanout(harness.kernel, harness.hierarchy, tier)
        assert leaders == [
            r.leader for r in harness.hierarchy.rings_in_tier(tier) if r.leader is not None
        ]


class TestQueryResultCaching:
    def test_guids_cached_and_len_fast_path(self):
        engine = OneRoundEngine(
            HierarchyBuilder("serving-test").regular(ring_size=3, height=2),
            config=ProtocolConfig(aggregation_delay=0.0),
        )
        ap = engine.hierarchy.access_proxies()[0]
        engine.member_join(ap, "alice")
        engine.propagate()
        result = MembershipQueryService(engine).query(MembershipScheme.TMS)
        assert result.guids == ["alice"]
        assert result.guids is result.guids  # computed once, cached
        assert result.member_count == len(result) == len(result.members) == 1


class TestQueryLoad:
    @pytest.mark.parametrize("mode", ("batched", "object"))
    def test_load_generator_runs_interleaved(self, mode):
        harness = _harness(3, 2, "columnar" if mode == "batched" else "object")
        aps = harness.access_proxies()
        for index in range(4):
            harness.schedule_join(0.3 * (index + 1), aps[index % len(aps)])
        config = QueryLoadConfig(batch_size=6, batches=3, interval=1.0, mode=mode, seed=1)
        result = run_query_load(harness, config)
        assert result["mode"] == mode
        assert result["batches"] == 3
        assert result["total_queries"] == 18
        assert result["overall_qps"] > 0
        for stats in result["schemes"].values():
            assert stats["queries"] == 6
            assert stats["p99_ms"] >= stats["p50_ms"] >= 0
        if mode == "batched":
            assert result["snapshots"]["captures"] >= 1
        else:
            assert "snapshots" not in result

    def test_rejects_unknown_mode(self):
        harness = _harness(2, 2, "object")
        with pytest.raises(ValueError):
            QueryLoadGenerator(harness, QueryLoadConfig(mode="bogus"))
