"""Kernel-seam regression tests for duplicate/stale message replays.

The injection seam (``ScenarioHarness.schedule_injection``) re-transmits a
*recorded* dispatch notification through the ordinary delivery path, so the
kernel's per-member sequence watermark is what stands between a retrying
network and corrupted membership:

* a **duplicate** re-delivers the member's most recent message — its sequence
  *equals* the applied watermark, so this is precisely the ``<=`` (not ``<``)
  equality case of the ``stale_for`` check;
* a **stale replay** re-delivers the member's *first* message — a departed
  member's original join arriving after its leave circulated, the classic
  resurrection hazard.

Both must be absorbed identically by the ``object`` and ``columnar`` kernel
backends, and every injection is counted, never silently dropped.
"""

from __future__ import annotations

import pytest

from repro.sim.harness import HarnessConfig, HarnessError, ScenarioHarness
from repro.workloads.matrix import MatrixCell, run_matrix_cell
from repro.workloads.parallel import result_fingerprint

BACKENDS = ("object", "columnar")


def _harness(backend: str, record_sends: bool = True) -> ScenarioHarness:
    return ScenarioHarness(
        HarnessConfig(
            ring_size=4, height=2, seed=0, backend=backend, record_sends=record_sends
        )
    )


def _populate(harness: ScenarioHarness, count: int = 6) -> None:
    aps = harness.access_proxies()
    for i in range(count):
        harness.schedule_join(1.0 * i, aps[i % len(aps)], guid=f"m-{i:02d}")


@pytest.mark.parametrize("backend", BACKENDS)
class TestInjectionSeam:
    def test_duplicate_of_latest_message_is_absorbed(self, backend):
        harness = _harness(backend)
        _populate(harness)
        harness.run()
        before = set(harness.global_guids())
        harness.schedule_injection(50.0, "duplicate", "m-03")
        outcome = harness.run()
        assert set(harness.global_guids()) == before
        assert outcome.converged and outcome.ring_agreement
        counters = harness.counter_values()
        assert counters.get("harness.injections_duplicate", 0) == 1
        assert counters.get("harness.injections_skipped", 0) == 0

    def test_stale_join_replay_does_not_resurrect(self, backend):
        harness = _harness(backend)
        _populate(harness)
        harness.schedule_leave(20.0, "m-02")
        harness.run()
        assert "m-02" not in set(harness.global_guids())
        # Re-deliver m-02's *first* recorded message: its original join.
        harness.schedule_injection(60.0, "stale", "m-02")
        outcome = harness.run()
        assert "m-02" not in set(harness.global_guids()), "stale join resurrected"
        assert outcome.converged and outcome.ring_agreement
        assert harness.counter_values().get("harness.injections_stale", 0) == 1

    def test_unrecorded_member_is_counted_not_dropped(self, backend):
        harness = _harness(backend)
        _populate(harness)
        harness.schedule_injection(30.0, "duplicate", "ghost-member")
        harness.run()
        assert harness.counter_values().get("harness.injections_skipped", 0) == 1

    def test_backends_agree_on_injection_outcome(self, backend):
        """Either backend ends with the identical membership and counters."""
        results = {}
        for b in BACKENDS:
            harness = _harness(b)
            _populate(harness)
            harness.schedule_leave(20.0, "m-01")
            harness.schedule_injection(60.0, "stale", "m-01")
            harness.schedule_injection(65.0, "duplicate", "m-04")
            harness.run()
            counters = harness.counter_values()
            results[b] = (
                tuple(sorted(harness.global_guids())),
                counters.get("harness.injections_stale", 0),
                counters.get("harness.injections_duplicate", 0),
            )
        assert results["object"] == results[backend]


class TestInjectionSeamErrors:
    def test_requires_record_sends(self):
        harness = _harness("object", record_sends=False)
        with pytest.raises(HarnessError, match="record_sends"):
            harness.schedule_injection(1.0, "duplicate", "m-00")

    def test_unknown_kind(self):
        harness = _harness("object")
        with pytest.raises(HarnessError, match="injection kind"):
            harness.schedule_injection(1.0, "mangle", "m-00")


@pytest.mark.parametrize("backend", BACKENDS)
def test_replay_injection_family_through_harness(backend):
    """The full family drives the seam end-to-end on both backends."""
    cell = MatrixCell(
        scenario="replay_injection", num_proxies=16, loss=0.0, seed=0, backend=backend
    )
    result = run_matrix_cell(cell, events=12)
    assert result.converged and result.ring_agreement
    counters = result.record.counters
    assert counters.get("harness.injections_stale", 0) == 4
    assert counters.get("harness.injections_duplicate", 0) == 4
    # The stale victims joined and left before their joins were replayed:
    # none may be resurrected, so only the 12 steady members remain.
    assert result.membership == 12


def test_replay_injection_family_backend_fingerprints_are_stable():
    """Same cell, same backend, twice: bit-identical record fingerprints."""
    for backend in BACKENDS:
        cell = MatrixCell(
            scenario="replay_injection", num_proxies=16, loss=0.0, seed=0, backend=backend
        )
        a = result_fingerprint(run_matrix_cell(cell, events=12))
        b = result_fingerprint(run_matrix_cell(cell, events=12))
        assert a == b
