"""Cross-protocol conformance for the MembershipProtocol driver seam.

Two kinds of coverage:

* **Property tests** — every protocol behind
  :mod:`repro.baselines.driver` (RGB kernel, flat ring, gossip, tree) replays
  an arbitrary lossless scenario and must reach global agreement on *the same*
  final membership, because all event gating lives in the shared driver base.
* **Golden ablation run** — one small seeded ablation sweep is canonicalised
  (wall-clock fields dropped, floats rounded) and asserted byte-identical to
  ``tests/golden/ablation_small.json``.  Regenerate after an intentional
  behaviour change with::

      PYTHONPATH=src python tests/test_protocol_drivers.py --regen
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.scalability import (
    hcn_ring,
    hcn_tree,
    hcn_tree_without_representatives,
)
from repro.baselines.driver import (
    PROTOCOL_NAMES,
    build_protocol,
    ring_shape_for_proxies,
    tree_shape_for_leaves,
)
from repro.workloads.matrix import AblationSweep, MatrixCell, run_ablation_cell

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
GOLDEN_PATH = GOLDEN_DIR / "ablation_small.json"

NUM_SITES = 9  # rgb: (3, 2) hierarchy; tree: branching 3, height 3; 9 proxies
MEMBERS = [f"m{i}" for i in range(6)]

# An op is (kind, member_index, site_index); invalid ops (duplicate joins,
# leaves of absent members, handoffs to the current site) are exercised on
# purpose — the shared gating must skip them identically in every protocol.
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["join", "leave", "handoff"]),
        st.integers(min_value=0, max_value=len(MEMBERS) - 1),
        st.integers(min_value=0, max_value=NUM_SITES - 1),
    ),
    min_size=1,
    max_size=18,
)


def apply_ops(driver, ops: List[Tuple[str, int, int]]) -> None:
    sites = driver.sites
    for kind, member_idx, site_idx in ops:
        member = MEMBERS[member_idx]
        if kind == "join":
            driver.join(sites[site_idx], member)
        elif kind == "leave":
            driver.leave(member)
        else:
            driver.handoff(member, sites[site_idx])


def reference_membership(ops: List[Tuple[str, int, int]]) -> set:
    """The gating rules of BaseProtocolDriver, replayed on a plain dict."""
    attachment: Dict[str, int] = {}
    for kind, member_idx, site_idx in ops:
        member = MEMBERS[member_idx]
        if kind == "join":
            if member not in attachment:
                attachment[member] = site_idx
        elif kind == "leave":
            attachment.pop(member, None)
        else:
            if member in attachment and attachment[member] != site_idx:
                attachment[member] = site_idx
    return set(attachment)


class TestCrossProtocolConvergence:
    @settings(max_examples=15, deadline=None)
    @given(ops=ops_strategy)
    def test_all_protocols_agree_on_lossless_scenarios(self, ops):
        expected = reference_membership(ops)
        for name in PROTOCOL_NAMES:
            driver = build_protocol(name, NUM_SITES, loss=0.0, seed=13)
            apply_ops(driver, ops)
            assert driver.global_agreement(), f"{name} did not reach agreement"
            assert driver.members() == expected, (
                f"{name} membership {sorted(driver.members())} != {sorted(expected)}"
            )

    @settings(max_examples=8, deadline=None)
    @given(ops=ops_strategy, seed=st.integers(min_value=0, max_value=5))
    def test_lossy_runs_converge_to_the_lossless_view(self, ops, seed):
        expected = reference_membership(ops)
        for name in PROTOCOL_NAMES:
            driver = build_protocol(name, NUM_SITES, loss=0.05, seed=seed)
            apply_ops(driver, ops)
            assert driver.global_agreement(), f"{name} did not mask 5% loss"
            assert driver.members() == expected

    def test_site_crash_parity(self):
        """A crashed site's members are failure-propagated by every protocol.

        The crash target is a *pure leaf* in the tree's representative
        assignment (index 1), so no protocol loses more than the one site.
        """
        results = {}
        for name in PROTOCOL_NAMES:
            driver = build_protocol(name, NUM_SITES, loss=0.0, seed=21)
            sites = driver.sites
            for index, member in enumerate(MEMBERS):
                driver.join(sites[index % 4], member)
            crash_report = driver.fail_site(sites[1])
            assert crash_report.applied
            driver.join(sites[3], "late")
            driver.leave(MEMBERS[0])
            assert driver.global_agreement(), f"{name} disagrees after crash"
            assert sites[1] not in driver.operational_sites()
            results[name] = frozenset(driver.members())
        assert len(set(results.values())) == 1, f"membership diverged: {results}"
        survivors = next(iter(results.values()))
        # m1 and m5 were attached to the crashed site; m0 left voluntarily.
        assert survivors == {"m2", "m3", "m4", "late"}

    def test_crashing_the_last_site_is_refused(self):
        driver = build_protocol("flat_ring", 2)
        assert driver.fail_site(driver.sites[0]).applied
        assert not driver.fail_site(driver.sites[1]).applied


class TestCostReports:
    def test_single_change_hops_match_the_closed_forms(self):
        """Formulas (1)–(6) validation: one join on an idle population costs
        exactly the paper's normalised hop count."""
        n = 16
        ring_size, height = ring_shape_for_proxies(n)
        branching, tree_height = tree_shape_for_leaves(n)

        rgb = build_protocol("rgb", n)
        report = rgb.join(rgb.sites[0], "alice")
        assert report.hops == hcn_ring(height, ring_size)

        flat = build_protocol("flat_ring", n)
        assert flat.join(flat.sites[0], "alice").hops == n

        tree = build_protocol("tree", n)
        tree_report = tree.join(tree.sites[0], "alice")
        # Physical hops are bounded by formula (4); the logical edge count of
        # the propagation equals formula (1)'s normalised form.
        assert tree_report.hops <= hcn_tree(tree_height, branching)
        assert tree.protocol.reports[-1].logical_hops == hcn_tree_without_representatives(
            tree_height, branching
        )

    def test_skipped_events_are_counted_not_charged(self):
        driver = build_protocol("gossip", NUM_SITES, seed=2)
        driver.join(driver.sites[0], "alice")
        before = driver.totals.messages
        duplicate = driver.join(driver.sites[3], "alice")
        assert not duplicate.applied
        assert driver.totals.skipped == 1
        assert driver.totals.messages == before

    def test_totals_accumulate_reports(self):
        driver = build_protocol("flat_ring", 8, seed=1)
        driver.join(driver.sites[0], "a")
        driver.join(driver.sites[1], "b")
        driver.leave("a")
        totals = driver.totals
        assert totals.changes == 3
        assert totals.hops == 24  # three full revolutions of 8 proxies
        assert totals.per_change(totals.hops) == pytest.approx(8.0)
        values = totals.as_values()
        assert values["hops_per_change"] == pytest.approx(8.0)
        assert values["changes"] == 3.0

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            build_protocol("paxos", 9)


def canonical_ablation() -> str:
    """A small seeded ablation sweep, canonicalised for golden comparison."""
    sweep = AblationSweep(
        sizes=(16,),
        losses=(0.0, 0.01),
        scenarios=("churn", "partition_merge"),
        protocols=PROTOCOL_NAMES,
        seed=0,
        events_per_cell=10,
    )
    cells = []
    for result in sweep.run():
        record = result.record.to_json()
        values = {
            key: round(float(value), 6)
            for key, value in sorted(record["values"].items())
            if key not in ("wall_seconds", "build_seconds", "events_per_second")
        }
        cells.append({"name": record["name"], "params": record["params"], "values": values})
    return json.dumps(cells, indent=2, sort_keys=True) + "\n"


class TestGoldenAblation:
    def test_ablation_run_is_stable_across_runs(self):
        assert canonical_ablation() == canonical_ablation()

    def test_ablation_run_matches_golden_file(self):
        assert GOLDEN_PATH.exists(), (
            f"missing golden file {GOLDEN_PATH}; regenerate with "
            "`PYTHONPATH=src python tests/test_protocol_drivers.py --regen`"
        )
        assert canonical_ablation() == GOLDEN_PATH.read_text()


class TestAblationCell:
    @pytest.mark.parametrize("scenario", ["handoff_storm", "mobility_trace"])
    def test_other_scenarios_replay_through_every_protocol(self, scenario):
        for name in PROTOCOL_NAMES:
            cell = MatrixCell(scenario, 16, 0.0, seed=1, protocol=name)
            result = run_ablation_cell(cell, events=8)
            assert result.converged, f"{name}/{scenario} disagrees"
            assert result.record.params["protocol"] == name
            assert result.record.value("changes") > 0

    def test_matrix_cell_routes_baseline_protocols_to_the_replay(self):
        from repro.workloads.matrix import run_matrix_cell

        result = run_matrix_cell(MatrixCell("churn", 16, 0.0, protocol="gossip"), events=6)
        assert result.record.params["protocol"] == "gossip"
        assert result.converged

    def test_unknown_protocol_in_cell_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            MatrixCell("churn", 16, 0.0, protocol="paxos")


def _regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    GOLDEN_PATH.write_text(canonical_ablation())
    print(f"wrote {GOLDEN_PATH} ({GOLDEN_PATH.stat().st_size} bytes)")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
