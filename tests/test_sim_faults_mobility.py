"""Unit tests for fault injection and the mobility model."""

from __future__ import annotations

import pytest

from repro.sim.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.sim.mobility import AttachmentEvent, HandoffEvent, MobilityModel
from repro.sim.network import NodeState
from repro.sim.rng import RandomStreams


class TestFaultPlan:
    def test_crash_and_disconnect_builders(self):
        plan = FaultPlan().crash("ap-1", time=3.0).disconnect("ap-2", time=1.0, duration=5.0)
        assert len(plan) == 2
        ordered = plan.sorted_events()
        assert ordered[0].target == "ap-2"
        assert ordered[1].kind is FaultKind.CRASH

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(time=-1.0, kind=FaultKind.CRASH, target="x")

    def test_non_positive_duration_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, kind=FaultKind.DISCONNECT, target="x", duration=0.0)

    def test_uniform_node_faults_probability_zero(self, streams):
        plan = FaultPlan.uniform_node_faults(["a", "b", "c"], 0.0, streams.stream("f"))
        assert len(plan) == 0

    def test_uniform_node_faults_probability_one(self, streams):
        plan = FaultPlan.uniform_node_faults(["a", "b", "c"], 1.0, streams.stream("f"))
        assert len(plan) == 3

    def test_uniform_node_faults_invalid_probability(self, streams):
        with pytest.raises(ValueError):
            FaultPlan.uniform_node_faults(["a"], 1.5, streams.stream("f"))

    def test_uniform_node_faults_expected_fraction(self, streams):
        nodes = [f"n{i}" for i in range(4000)]
        plan = FaultPlan.uniform_node_faults(nodes, 0.25, streams.stream("f"))
        assert 0.2 < len(plan) / len(nodes) < 0.3


class TestFaultInjector:
    def test_crash_marks_node_failed(self, engine, small_network, streams):
        injector = FaultInjector(engine, small_network, streams)
        injector.apply_plan(FaultPlan().crash("a", time=2.0))
        engine.run()
        assert small_network.node("a").state is NodeState.FAILED

    def test_disconnect_then_reconnect(self, engine, small_network, streams):
        injector = FaultInjector(engine, small_network, streams)
        injector.apply_plan(FaultPlan().disconnect("b", time=1.0, duration=4.0))
        engine.run(until=2.0)
        assert small_network.node("b").state is NodeState.DISCONNECTED
        engine.run()
        assert small_network.node("b").state is NodeState.UP

    def test_crashed_node_does_not_reconnect(self, engine, small_network, streams):
        injector = FaultInjector(engine, small_network, streams)
        plan = FaultPlan()
        plan.disconnect("b", time=1.0, duration=10.0)
        plan.crash("b", time=2.0)
        injector.apply_plan(plan)
        engine.run()
        assert small_network.node("b").state is NodeState.FAILED

    def test_link_down_and_recovery(self, engine, small_network, streams):
        injector = FaultInjector(engine, small_network, streams)
        injector.apply_plan(FaultPlan().link_down("a", "b", time=1.0, duration=3.0))
        engine.run(until=2.0)
        assert not small_network.link("a", "b").up
        engine.run()
        assert small_network.link("a", "b").up

    def test_listeners_are_notified(self, engine, small_network, streams):
        injector = FaultInjector(engine, small_network, streams)
        seen = []
        injector.on_fault(lambda event: seen.append(event.kind))
        injector.inject_now(FaultEvent(time=0.0, kind=FaultKind.CRASH, target="c"))
        assert seen == [FaultKind.CRASH]
        assert injector.metrics.counter("faults.crash").value == 1

    def test_poisson_crashes_respect_horizon(self, engine, small_network, streams):
        injector = FaultInjector(engine, small_network, streams)
        plan = injector.poisson_crashes(["a", "b", "c", "d", "e"], rate_per_node=0.5, horizon=10.0)
        assert all(event.time <= 10.0 for event in plan.events)

    def test_poisson_zero_rate_empty(self, engine, small_network, streams):
        injector = FaultInjector(engine, small_network, streams)
        assert len(injector.poisson_crashes(["a"], 0.0, 10.0)) == 0

    def test_transient_disconnections_have_durations(self, engine, small_network, streams):
        injector = FaultInjector(engine, small_network, streams)
        plan = injector.transient_disconnections(["a", "b"], rate_per_node=0.2, mean_downtime=3.0, horizon=50.0)
        assert all(e.kind is FaultKind.DISCONNECT and e.duration > 0 for e in plan.events)


class TestMobilityModel:
    def _model(self, seed=5, **kwargs):
        aps = [f"ap-{i}" for i in range(6)]
        neighbors = {ap: [a for a in aps if a != ap][:2] for ap in aps}
        return MobilityModel(aps, RandomStreams(seed), neighbor_map=neighbors, **kwargs)

    def test_host_trace_starts_with_attach_and_ends_with_detach(self):
        trace = self._model().generate_host("mh-1", arrival_time=10.0)
        events = trace.all_events()
        first, last = events[0], events[-1]
        assert isinstance(first, AttachmentEvent) and first.attach
        assert isinstance(last, AttachmentEvent) and not last.attach
        assert first.time == 10.0
        assert last.time > first.time

    def test_handoffs_move_between_distinct_aps(self):
        trace = self._model(mean_residency=10.0, mean_session=500.0).generate_host("mh-1", 0.0)
        for handoff in trace.handoffs:
            assert handoff.from_ap != handoff.to_ap

    def test_handoff_chain_is_consistent(self):
        trace = self._model(mean_residency=5.0, mean_session=300.0).generate_host("mh-1", 0.0)
        current = trace.attachments[0].ap_id
        for handoff in trace.handoffs:
            assert handoff.from_ap == current
            current = handoff.to_ap
        assert trace.attachments[-1].ap_id == current

    def test_population_counts(self):
        trace = self._model().generate_population(num_hosts=20, arrival_rate=0.5)
        attaches = [e for e in trace.attachments if e.attach]
        assert len(attaches) == 20

    def test_population_horizon_clips_events(self):
        trace = self._model().generate_population(num_hosts=20, arrival_rate=0.5, horizon=30.0)
        assert all(e.time <= 30.0 for e in trace.all_events())

    def test_deterministic_given_seed(self):
        t1 = self._model(seed=9).generate_population(5, 1.0)
        t2 = self._model(seed=9).generate_population(5, 1.0)
        assert [(e.time, e.host_id) for e in t1.all_events()] == [
            (e.time, e.host_id) for e in t2.all_events()
        ]

    def test_events_for_host(self):
        trace = self._model().generate_population(5, 1.0)
        events = trace.events_for_host("mh-00002")
        assert events and all(e.host_id == "mh-00002" for e in events)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MobilityModel([], RandomStreams(0))
        with pytest.raises(ValueError):
            self._model(mean_residency=-1.0)
        with pytest.raises(ValueError):
            self._model().generate_population(0, 1.0)
        with pytest.raises(ValueError):
            self._model().generate_population(1, 0.0)
