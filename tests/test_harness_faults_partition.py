"""Fault and partition paths exercised through the harness, not mocks.

Covers the two paths the ISSUE calls out explicitly:

* ``sim/faults.py`` crash **during token hold** — an access proxy crashes
  after capturing membership work but before its token round fires, so the
  kernel's ring-repair surgery (detection by the circulating token, member
  loss reporting, hierarchy patching) runs inside the event-driven stack;
* ``core/partition.py`` **merge after heal** — transient disconnections
  split a bottom ring into multiple partitions, work captured inside the
  detached arc is withheld by the lossy transport, and after the heal the
  views merge back into one agreed global view.
"""

from __future__ import annotations

from repro.sim.faults import FaultPlan
from repro.sim.harness import HarnessConfig, ScenarioHarness


def build_harness(**overrides) -> ScenarioHarness:
    defaults = dict(ring_size=4, height=2, seed=13)
    defaults.update(overrides)
    return ScenarioHarness(HarnessConfig(**defaults))


class TestCrashDuringTokenHold:
    def test_crash_between_capture_and_round(self):
        """The victim holds captured-but-unpropagated work when it dies."""
        harness = build_harness()
        aps = harness.access_proxies()
        victim = aps[0]
        # Capture lands at t=1; the round would fire at t=2 (round_delay=1);
        # the crash hits in between, while the queue is non-empty.
        harness.schedule_join(1.0, victim, guid="doomed")
        harness.schedule_crash(1.5, victim)
        harness.schedule_join(3.0, aps[1], guid="survivor")
        result = harness.run()
        assert result.converged and result.ring_agreement
        # The held operation died with the proxy; the crash itself propagated.
        assert harness.global_guids() == ["survivor"]
        assert not harness.hierarchy.has_node(victim)
        assert result.counters["repairs.ring"] == 1
        assert result.counters["faults.crash"] == 1

    def test_crash_is_discovered_in_an_idle_ring(self):
        """No membership traffic anywhere: the probe round alone repairs."""
        harness = build_harness()
        victim = harness.access_proxies()[2]
        harness.schedule_crash(5.0, victim)
        result = harness.run()
        assert result.converged
        assert not harness.hierarchy.has_node(victim)
        assert result.counters["repairs.ring"] == 1
        # The NE-failure operation propagated through the hierarchy.
        assert result.counters.get("capture.ne-failure", 0) >= 0
        assert harness.partition_report().count == 1

    def test_leader_crash_reroutes_inflight_notification(self):
        """The upward target dies while a notification is in flight."""
        harness = build_harness(seed=21, latency_mean=8.0, latency_std=0.0)
        aps = harness.access_proxies()
        ring = harness.hierarchy.ring_of(aps[0])
        parent = harness.hierarchy.parent_node[ring.ring_id]
        harness.schedule_join(1.0, aps[0], guid="m-0")
        # Round fires at t=2, the notify to the parent is in flight (8 time
        # units of latency) when the parent crashes.
        harness.schedule_crash(4.0, parent.value)
        result = harness.run()
        assert result.converged and result.ring_agreement
        assert harness.global_guids() == ["m-0"]
        assert result.counters.get("harness.notify_rerouted", 0) >= 1
        assert result.counters["repairs.ring"] >= 1


class TestPartitionMergeAfterHeal:
    def _split_plan(self, harness: ScenarioHarness, split_at: float, downtime: float):
        ring = harness.hierarchy.bottom_rings()[0]
        victims = [ring.members[0].value, ring.members[2].value]
        plan = FaultPlan()
        for victim in victims:
            plan.disconnect(victim, time=split_at, duration=downtime)
        return ring, victims, plan

    def test_ring_splits_and_merges(self):
        harness = build_harness(seed=17)
        ring, victims, plan = self._split_plan(harness, split_at=20.0, downtime=100.0)
        harness.schedule_fault_plan(plan)

        counts = []
        harness.engine.schedule_at(
            60.0, lambda _e: counts.append(harness.partition_report().count)
        )
        harness.engine.schedule_at(
            140.0, lambda _e: counts.append(harness.partition_report().count)
        )
        harness.run()
        split_count, healed_count = counts
        assert split_count >= 2  # two non-adjacent faults split the ring
        assert healed_count == 1  # disconnections healed, hierarchy whole

    def test_work_captured_in_detached_arc_merges_after_heal(self):
        harness = build_harness(seed=17)
        aps = harness.access_proxies()
        ring, victims, plan = self._split_plan(harness, split_at=20.0, downtime=200.0)
        harness.schedule_fault_plan(plan)
        # The ring leader is one of the victims: upward notifications from
        # this ring are blocked while it is detached.
        assert str(ring.leader) in victims

        harness.schedule_join(1.0, aps[5], guid="before")
        harness.schedule_join(40.0, victims[0], guid="inside-split")

        observed = []
        harness.engine.schedule_at(
            150.0, lambda _e: observed.append(tuple(harness.global_guids()))
        )
        result = harness.run()
        # Mid-split the detached arc's join had not reached the global view...
        assert observed == [("before",)]
        # ... after the heal the views merged and everything converged.
        assert result.converged and result.ring_agreement
        assert harness.global_guids() == ["before", "inside-split"]
        assert harness.partition_report().count == 1

    def test_partition_report_identifies_primary(self):
        harness = build_harness(seed=17)
        ring, victims, plan = self._split_plan(harness, split_at=10.0, downtime=50.0)
        harness.schedule_fault_plan(plan)
        reports = []
        harness.engine.schedule_at(30.0, lambda _e: reports.append(harness.partition_report()))
        harness.run()
        report = reports[0]
        assert report.count >= 2
        primary = report.primary()
        assert primary is not None and primary.contains_top
        assert sorted(report.faulty_entities) == sorted(victims)
