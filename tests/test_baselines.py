"""Tests for the baseline membership schemes (tree, flat ring, gossip)."""

from __future__ import annotations

import pytest

from repro.analysis.scalability import hcn_tree_without_representatives, tree_leaf_count
from repro.baselines.flat_ring import FlatRingMembership
from repro.baselines.gossip import GossipMembership
from repro.baselines.tree_hierarchy import TreeHierarchy
from repro.baselines.tree_membership import TreeMembershipProtocol


class TestTreeHierarchy:
    def test_leaf_count_matches_formula(self):
        tree = TreeHierarchy.regular(height=3, branching=5)
        assert tree.leaf_count() == tree_leaf_count(3, 5) == 25

    def test_with_representatives_uses_only_leaf_servers(self):
        tree = TreeHierarchy.regular(height=3, branching=3, with_representatives=True)
        assert len(tree.physical_servers()) == tree.leaf_count()
        # every interior node is played by one of its descendant leaves
        for node in tree.interior_nodes():
            descendants = {leaf.server for leaf in tree.leaves() if node.node_id in ([leaf.node_id] + tree.path_to_root(leaf.node_id))}
            assert node.server in descendants

    def test_without_representatives_has_distinct_servers(self):
        tree = TreeHierarchy.regular(height=3, branching=3, with_representatives=False)
        assert len(tree.physical_servers()) == len(tree.nodes)

    def test_edge_counts(self):
        tree = TreeHierarchy.regular(height=3, branching=3, with_representatives=True)
        assert tree.edge_count() == 3 + 9
        assert tree.physical_edge_count() < tree.edge_count()

    def test_partition_count_no_faults(self):
        tree = TreeHierarchy.regular(height=3, branching=3)
        assert tree.partition_count([]) == 1
        assert tree.functions_well([])

    def test_leaf_failure_keeps_tree_whole(self):
        tree = TreeHierarchy.regular(height=3, branching=3)
        pure_leaf = next(
            leaf.server for leaf in tree.leaves() if len(tree.logical_nodes_of_server(leaf.server)) == 1
        )
        assert tree.partition_count([pure_leaf]) == 1

    def test_representative_failure_partitions_tree(self):
        tree = TreeHierarchy.regular(height=3, branching=3, with_representatives=True)
        # a level-1 representative plays a leaf and an interior node
        rep = next(
            node.server for node in tree.interior_nodes() if not node.is_root
        )
        assert tree.partition_count([rep]) > 1

    def test_height_and_branching_validation(self):
        with pytest.raises(ValueError):
            TreeHierarchy.regular(height=2, branching=3)
        with pytest.raises(ValueError):
            TreeHierarchy.regular(height=3, branching=1)


class TestTreeMembershipProtocol:
    def test_one_change_crosses_every_logical_edge(self):
        tree = TreeHierarchy.regular(height=3, branching=5, with_representatives=True)
        protocol = TreeMembershipProtocol(tree)
        leaf = tree.leaves()[0].node_id
        report = protocol.join(leaf, "alice")
        assert report.logical_hops == hcn_tree_without_representatives(3, 5)
        assert report.physical_hops < report.logical_hops  # representative savings
        assert report.servers_reached == len(tree.physical_servers())

    def test_all_servers_agree_after_propagation(self):
        tree = TreeHierarchy.regular(height=3, branching=3)
        protocol = TreeMembershipProtocol(tree)
        leaves = tree.leaves()
        protocol.join(leaves[0].node_id, "alice")
        protocol.join(leaves[4].node_id, "bob")
        protocol.leave(leaves[0].node_id, "alice")
        assert protocol.global_agreement()
        assert protocol.membership_at(tree.root.server) == {"bob"}

    def test_failed_server_does_not_apply_changes(self):
        tree = TreeHierarchy.regular(height=3, branching=3)
        protocol = TreeMembershipProtocol(tree)
        victim = tree.leaves()[3].server
        protocol.fail_server(victim)
        protocol.join(tree.leaves()[0].node_id, "alice")
        assert protocol.membership_at(victim) == set()
        assert not protocol.global_agreement() or victim not in protocol.operational_servers()

    def test_average_hops(self):
        tree = TreeHierarchy.regular(height=3, branching=3)
        protocol = TreeMembershipProtocol(tree)
        for index, leaf in enumerate(tree.leaves()[:4]):
            protocol.join(leaf.node_id, f"m{index}")
        assert protocol.average_logical_hops() == pytest.approx(hcn_tree_without_representatives(3, 3))

    def test_non_leaf_origin_rejected(self):
        tree = TreeHierarchy.regular(height=3, branching=3)
        protocol = TreeMembershipProtocol(tree)
        with pytest.raises(KeyError):
            protocol.join(tree.root.node_id, "alice")

    def test_crashed_representative_partitions_propagation(self):
        """A dead interior representative stalls propagation honestly: no
        phantom hops through dead servers, unreachable subtrees stay stale,
        and global agreement breaks (the paper's Section 5.2 tree weakness)."""
        tree = TreeHierarchy.regular(height=3, branching=3, with_representatives=True)
        protocol = TreeMembershipProtocol(tree)
        healthy = protocol.join(tree.leaves()[4].node_id, "warmup")
        # leaves()[0] plays the root and the leftmost interior spine.
        protocol.fail_server(tree.leaves()[0].server)
        report = protocol.join(tree.leaves()[4].node_id, "alice")
        assert report.physical_hops < healthy.physical_hops
        assert report.retransmissions >= 1  # the attempted send to the dead root
        assert report.servers_reached < healthy.servers_reached
        # Leaves behind the dead root never saw the change: stale views.
        assert not protocol.global_agreement()
        assert "alice" not in protocol.membership_at(tree.leaves()[8].server)

    def test_origin_on_failed_server_rejected(self):
        tree = TreeHierarchy.regular(height=3, branching=3)
        protocol = TreeMembershipProtocol(tree)
        victim = tree.leaves()[4]
        protocol.fail_server(victim.server)
        with pytest.raises(ValueError):
            protocol.join(victim.node_id, "alice")

    def test_lossy_links_add_retransmissions_not_hops(self):
        tree = TreeHierarchy.regular(height=3, branching=4)
        lossless = TreeMembershipProtocol(tree)
        lossy = TreeMembershipProtocol(TreeHierarchy.regular(height=3, branching=4), loss=0.4, seed=3)
        leaf = tree.leaves()[0].node_id
        clean = lossless.join(leaf, "m")
        noisy = lossy.join(leaf, "m")
        assert noisy.physical_hops == clean.physical_hops
        assert noisy.retransmissions > 0
        assert noisy.messages == noisy.physical_hops + noisy.retransmissions
        assert clean.retransmissions == 0


class TestFlatRing:
    def test_change_visits_every_proxy(self):
        ring = FlatRingMembership([f"ap-{i}" for i in range(10)])
        report = ring.join("ap-3", "alice")
        assert report.members_reached == 10
        assert report.hops == 10
        assert ring.global_agreement()

    def test_hops_scale_linearly_with_n(self):
        small = FlatRingMembership([f"ap-{i}" for i in range(10)]).join("ap-0", "m")
        large = FlatRingMembership([f"ap-{i}" for i in range(100)]).join("ap-0", "m")
        assert large.hops == 10 * small.hops

    def test_leave_removes_member(self):
        ring = FlatRingMembership(["a", "b", "c"])
        ring.join("a", "alice")
        ring.leave("b", "alice")
        assert all(ring.membership_at(p) == set() for p in ring.operational())

    def test_failed_proxy_excluded_during_revolution(self):
        ring = FlatRingMembership(["a", "b", "c", "d"])
        ring.fail_proxy("c")
        report = ring.join("a", "alice")
        assert "c" in report.repaired
        assert ring.ring_size() == 3
        # The send towards the dead proxy plus token_retry_limit (default 2)
        # retries are all charged as retransmissions, kernel-style.
        assert ring.total_retransmissions == 3
        # Hops are *successful* transmissions only: a→b, the skip b→d and the
        # closing d→a.  The dead attempt at c is not a hop.
        assert report.hops == 3
        assert report.messages == 6

    def test_failed_proxy_costs_no_phantom_hop(self):
        """Regression: the seed charged a hop to the dead proxy itself."""
        healthy = FlatRingMembership(["a", "b", "c", "d"]).join("a", "m")
        lossy_ring = FlatRingMembership(["a", "b", "c", "d"])
        lossy_ring.fail_proxy("c")
        repaired = lossy_ring.join("a", "m")
        assert healthy.hops == 4
        assert repaired.hops == 3  # one fewer operational proxy to reach

    def test_closing_hop_charged_after_trailing_repair(self):
        """Regression: the closing hop was dropped whenever repairs left the
        revolution with `reached <= 1`-style accounting at the tail."""
        ring = FlatRingMembership(["a", "b", "c"])
        ring.fail_proxy("c")
        report = ring.join("a", "alice")
        # a→b (1 hop), b→c wasted (retransmissions), closing b→a (1 hop).
        assert report.hops == 2
        assert report.members_reached == 2
        assert report.retransmissions == 3

    def test_no_closing_hop_when_token_never_leaves_origin(self):
        ring = FlatRingMembership(["a", "b"])
        ring.fail_proxy("b")
        report = ring.join("a", "alice")
        assert report.hops == 0
        assert report.members_reached == 1
        assert report.retransmissions == 3

    def test_token_retry_limit_configurable(self):
        ring = FlatRingMembership(["a", "b", "c"], token_retry_limit=0)
        ring.fail_proxy("b")
        report = ring.join("a", "alice")
        assert report.retransmissions == 1  # the single wasted send, no retries

    def test_lossy_links_add_retransmissions_not_hops(self):
        ring = FlatRingMembership([f"ap-{i}" for i in range(12)], loss=0.4, seed=5)
        report = ring.join("ap-0", "alice")
        assert report.hops == 12  # delivered hops unchanged by loss masking
        assert report.retransmissions > 0
        assert report.messages == report.hops + report.retransmissions
        assert ring.global_agreement()

    def test_lossy_runs_deterministic_given_seed(self):
        runs = [
            FlatRingMembership([f"ap-{i}" for i in range(8)], loss=0.3, seed=9).join("ap-0", "m")
            for _ in range(2)
        ]
        assert runs[0].retransmissions == runs[1].retransmissions

    def test_invalid_loss_and_retry_limit(self):
        with pytest.raises(ValueError):
            FlatRingMembership(["a"], loss=1.0)
        with pytest.raises(ValueError):
            FlatRingMembership(["a"], token_retry_limit=-1)

    def test_origin_must_be_operational(self):
        ring = FlatRingMembership(["a", "b"])
        ring.fail_proxy("a")
        with pytest.raises(ValueError):
            ring.join("a", "alice")

    def test_duplicate_proxies_rejected(self):
        with pytest.raises(ValueError):
            FlatRingMembership(["a", "a"])


class TestGossip:
    def test_change_converges_to_all_proxies(self):
        gossip = GossipMembership([f"ap-{i}" for i in range(20)], fanout=3, seed=1)
        report = gossip.join("ap-0", "alice")
        assert report.converged
        assert gossip.global_agreement()
        assert gossip.membership_at("ap-19") == {"alice"}

    def test_rounds_grow_roughly_logarithmically(self):
        small = GossipMembership([f"ap-{i}" for i in range(16)], fanout=2, seed=1).join("ap-0", "m")
        large = GossipMembership([f"ap-{i}" for i in range(256)], fanout=2, seed=1).join("ap-0", "m")
        assert large.rounds <= 4 * small.rounds  # far from linear growth

    def test_messages_counted(self):
        gossip = GossipMembership([f"ap-{i}" for i in range(10)], fanout=2, seed=2)
        report = gossip.join("ap-0", "alice")
        assert report.messages > 0
        assert gossip.average_messages() == report.messages

    def test_failed_proxy_not_counted_for_convergence(self):
        gossip = GossipMembership([f"ap-{i}" for i in range(10)], fanout=2, seed=3)
        gossip.fail_proxy("ap-5")
        report = gossip.join("ap-0", "alice")
        assert report.converged
        assert "ap-5" not in gossip.operational()

    def test_probes_to_dead_peers_are_counted_as_wasted_sends(self):
        """Regression: failed proxies were silently excluded from peer
        selection, so gossip's message cost under failures was understated."""
        gossip = GossipMembership([f"ap-{i}" for i in range(20)], fanout=3, seed=4)
        for i in range(5, 15):
            gossip.fail_proxy(f"ap-{i}")
        report = gossip.join("ap-0", "alice")
        assert report.converged
        assert report.wasted_messages > 0
        assert report.messages > report.delivered_messages
        assert report.delivered_messages == report.messages - report.wasted_messages
        # No failure oracle: with half the group dead, a meaningful share of
        # probes must have been wasted on dead peers.
        assert report.wasted_messages >= report.messages // 10

    def test_no_failures_no_loss_means_no_wasted_sends(self):
        gossip = GossipMembership([f"ap-{i}" for i in range(15)], fanout=2, seed=6)
        report = gossip.join("ap-0", "alice")
        assert report.wasted_messages == 0

    def test_lossy_gossip_still_converges_with_wasted_sends(self):
        gossip = GossipMembership([f"ap-{i}" for i in range(25)], fanout=3, seed=8, loss=0.3)
        report = gossip.join("ap-0", "alice")
        assert report.converged
        assert gossip.global_agreement()
        assert report.wasted_messages > 0

    def test_invalid_loss(self):
        with pytest.raises(ValueError):
            GossipMembership(["a", "b"], loss=-0.1)

    def test_fanout_peers_are_distinct_per_sender(self):
        """With fanout = n-1 a single lossless push round must reach every
        peer — only true when a sender's peers are sampled without
        replacement (duplicates would leave some peers unprobed)."""
        for seed in range(5):
            gossip = GossipMembership([f"ap-{i}" for i in range(6)], fanout=5, seed=seed)
            report = gossip.join("ap-0", "alice")
            assert report.rounds == 1
            assert report.converged
            assert report.messages == 5

    def test_deterministic_given_seed(self):
        r1 = GossipMembership([f"ap-{i}" for i in range(30)], fanout=2, seed=7).join("ap-0", "m")
        r2 = GossipMembership([f"ap-{i}" for i in range(30)], fanout=2, seed=7).join("ap-0", "m")
        assert (r1.rounds, r1.messages) == (r2.rounds, r2.messages)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GossipMembership([], fanout=2)
        with pytest.raises(ValueError):
            GossipMembership(["a"], fanout=0)
