"""Unit tests for the 4-tier topology generation and rendering (Figures 1–2)."""

from __future__ import annotations

import pytest

from repro.core.hierarchy import HierarchyBuilder
from repro.sim.rng import RandomStreams
from repro.topology.architecture import (
    AccessNetworkKind,
    TopologySpec,
)
from repro.topology.generator import TopologyGenerator, generate_regular_topology
from repro.topology.rendering import render_architecture, render_hierarchy, render_tier_counts
from repro.topology.wireless import access_network_profile, all_profiles


class TestTopologySpec:
    def test_derived_sizes(self):
        spec = TopologySpec(num_border_routers=2, ags_per_br=3, aps_per_ag=4, hosts_per_ap=5)
        assert spec.num_access_gateways == 6
        assert spec.num_access_proxies == 24
        assert spec.num_mobile_hosts == 120

    def test_regular_height_two(self):
        spec = TopologySpec.regular(ring_size=5, height=2)
        assert spec.num_access_proxies == 25

    def test_regular_height_three(self):
        spec = TopologySpec.regular(ring_size=5, height=3)
        assert spec.num_access_proxies == 125

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            TopologySpec(access_network_mix={AccessNetworkKind.WIRELESS_LAN: 0.5})

    @pytest.mark.parametrize("field,value", [("num_border_routers", 0), ("ags_per_br", 0), ("aps_per_ag", 0), ("hosts_per_ap", -1)])
    def test_invalid_counts_rejected(self, field, value):
        kwargs = {field: value}
        with pytest.raises(ValueError):
            TopologySpec(**kwargs)

    def test_regular_invalid(self):
        with pytest.raises(ValueError):
            TopologySpec.regular(ring_size=1, height=2)
        with pytest.raises(ValueError):
            TopologySpec.regular(ring_size=5, height=1)


class TestWirelessProfiles:
    def test_all_kinds_have_profiles(self):
        profiles = all_profiles()
        assert set(profiles) == set(AccessNetworkKind)

    def test_satellite_has_highest_latency(self):
        sat = access_network_profile(AccessNetworkKind.SATELLITE)
        wlan = access_network_profile(AccessNetworkKind.WIRELESS_LAN)
        assert sat.edge_latency.mean > wlan.edge_latency.mean
        assert sat.mean_cell_residency > wlan.mean_cell_residency


class TestTopologyGenerator:
    def test_tier_counts_match_spec(self, small_topology):
        counts = small_topology.architecture.tier_counts()
        assert counts == {
            "border_routers": 2,
            "access_gateways": 4,
            "access_proxies": 12,
            "mobile_hosts": 24,
        }

    def test_architecture_is_internally_consistent(self, small_topology):
        small_topology.architecture.validate()

    def test_every_ap_has_a_parent_gateway(self, small_topology):
        arch = small_topology.architecture
        for ap in arch.access_proxies:
            assert arch.ap_parent[ap] in arch.access_gateways

    def test_every_host_attached_to_ap_with_wireless_link(self, small_topology):
        arch = small_topology.architecture
        network = small_topology.network
        for mh in arch.mobile_hosts:
            ap = arch.host_attachment[mh]
            assert network.has_link(mh, ap)

    def test_border_routers_fully_meshed(self, small_topology):
        arch = small_topology.architecture
        network = small_topology.network
        brs = arch.border_routers
        for i, a in enumerate(brs):
            for b in brs[i + 1 :]:
                assert network.has_link(a, b)

    def test_all_entities_reachable_from_any_br(self, small_topology):
        arch = small_topology.architecture
        network = small_topology.network
        source = arch.border_routers[0]
        for ap in arch.access_proxies:
            assert network.path(source, ap) is not None

    def test_deterministic_given_seed(self):
        spec = TopologySpec(num_border_routers=2, ags_per_br=2, aps_per_ag=2, hosts_per_ap=1)
        t1 = TopologyGenerator(spec, RandomStreams(3)).generate()
        t2 = TopologyGenerator(spec, RandomStreams(3)).generate()
        assert t1.architecture.ap_access_network == t2.architecture.ap_access_network
        assert t1.architecture.host_device_class == t2.architecture.host_device_class

    def test_ap_neighbors_are_same_gateway_aps(self, small_topology):
        arch = small_topology.architecture
        neighbors = arch.ap_neighbors()
        for ap, others in neighbors.items():
            assert ap not in others
            for other in others:
                assert arch.ap_parent[other] == arch.ap_parent[ap]

    def test_generate_regular_topology_sizes(self):
        topo = generate_regular_topology(ring_size=3, height=3)
        assert len(topo.access_proxies) == 27
        assert len(topo.border_routers) == 3

    def test_access_network_kinds_assigned(self, small_topology):
        arch = small_topology.architecture
        assert set(arch.ap_access_network) == set(arch.access_proxies)
        assert all(isinstance(v, AccessNetworkKind) for v in arch.ap_access_network.values())


class TestRendering:
    def test_tier_counts_rendering_mentions_all_tiers(self, small_topology):
        text = render_tier_counts(small_topology.architecture)
        for keyword in ("Inter-AS", "Intra-AS", "Wireless Access", "Mobile Host"):
            assert keyword in text

    def test_architecture_rendering_lists_entities(self, small_topology):
        text = render_architecture(small_topology.architecture)
        assert "br-000" in text
        assert "ag-000-000" in text
        assert "ap-000-000-000" in text

    def test_hierarchy_rendering_shows_rings_and_leaders(self, small_topology):
        hierarchy = HierarchyBuilder("g").from_topology(small_topology)
        text = render_hierarchy(hierarchy)
        assert "Border Router Tier" in text
        assert "Access Proxy Tier" in text
        assert "*" in text  # leader marker
        assert "(topmost)" in text
