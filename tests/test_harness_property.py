"""Property: a lossy harness run (retries enabled) converges to the same
final membership view as the lossless run for the same seed.

Message loss only delays delivery — the transport retransmits per link and
the dispatch re-sends dropped notifications with backoff — so the *final*
global view, the per-ring agreement and the member→AP attachment must be
identical to the loss-free execution of the same seeded workload.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.harness import HarnessConfig, ScenarioHarness
from repro.workloads.churn import ChurnKind, ChurnWorkload

WORKLOAD_EVENTS = 14


def run_workload(seed: int, loss: float):
    """One seeded churn-plus-handoff workload; returns the final view."""
    harness = ScenarioHarness(
        HarnessConfig(ring_size=3, height=2, seed=seed, loss=loss)
    )
    aps = harness.access_proxies()
    workload = ChurnWorkload(
        ap_ids=aps,
        join_rate=1.0,
        leave_rate=0.05,
        failure_rate=0.02,
        horizon=60.0,
        seed=seed,
    )
    joined = []
    for index, event in enumerate(workload.generate()[:WORKLOAD_EVENTS]):
        if event.kind is ChurnKind.JOIN:
            harness.schedule_join(event.time, event.ap, guid=event.member)
            joined.append(event.member)
        elif event.kind is ChurnKind.LEAVE:
            harness.schedule_leave(event.time, event.member)
        else:
            harness.schedule_failure(event.time, event.member)
    # A couple of deterministic handoffs exercise the previous-AP move path.
    if joined:
        harness.schedule_handoff(70.0, joined[0], aps[-1])
    result = harness.run()
    view = {str(m.guid): str(m.ap) for m in harness.global_membership()}
    return result, view


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss=st.sampled_from([0.01, 0.05, 0.10]),
)
def test_lossy_run_matches_lossless_final_view(seed: int, loss: float):
    lossless_result, lossless_view = run_workload(seed, loss=0.0)
    lossy_result, lossy_view = run_workload(seed, loss=loss)

    assert lossless_result.converged and lossless_result.ring_agreement
    assert lossy_result.converged and lossy_result.ring_agreement
    # Same members, attached at the same access proxies.
    assert lossy_view == lossless_view


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_lossy_run_is_itself_deterministic(seed: int):
    first_result, first_view = run_workload(seed, loss=0.05)
    second_result, second_view = run_workload(seed, loss=0.05)
    assert first_view == second_view
    assert first_result.dispatched_events == second_result.dispatched_events
    assert first_result.sim_time == second_result.sim_time
