"""Tests for the One-Round Token Passing Membership algorithm (Figure 3)."""

from __future__ import annotations

import pytest

from repro.analysis.scalability import hcn_ring
from repro.core.config import ProtocolConfig
from repro.core.hierarchy import HierarchyBuilder
from repro.core.identifiers import NodeId
from repro.core.one_round import OneRoundEngine, ProtocolError


def engine_for(ring_size=3, height=2, **config_kwargs) -> OneRoundEngine:
    hierarchy = HierarchyBuilder("g").regular(ring_size=ring_size, height=height)
    return OneRoundEngine(hierarchy, config=ProtocolConfig(aggregation_delay=0.0, **config_kwargs))


class TestSingleJoinPropagation:
    def test_join_reaches_global_view(self):
        engine = engine_for()
        ap = engine.hierarchy.access_proxies()[0]
        engine.member_join(ap, "alice")
        engine.propagate()
        assert engine.global_guids() == ["alice"]

    def test_join_updates_local_view_of_origin_ap(self):
        engine = engine_for()
        ap = engine.hierarchy.access_proxies()[0]
        engine.member_join(ap, "alice")
        engine.propagate()
        assert engine.entity(ap).local_members.guids() == ["alice"]

    def test_join_updates_neighbor_views_in_same_ring(self):
        engine = engine_for()
        ring = engine.hierarchy.bottom_rings()[0]
        origin = ring.members[0]
        neighbor = ring.members[1]
        engine.member_join(origin, "alice")
        engine.propagate()
        assert "alice" in engine.entity(neighbor).neighbor_members.guids()
        assert engine.entity(neighbor).local_members.guids() == []

    def test_all_rings_agree_after_propagation(self):
        engine = engine_for(ring_size=3, height=3)
        engine.member_join(engine.hierarchy.access_proxies()[5], "alice")
        engine.propagate()
        for ring_id in engine.hierarchy.rings:
            assert engine.ring_agreement(ring_id)

    def test_hop_count_matches_formula_six(self):
        for r, h in [(2, 2), (3, 2), (3, 3), (5, 2)]:
            engine = engine_for(ring_size=r, height=h)
            engine.member_join(engine.hierarchy.access_proxies()[0], "probe")
            report = engine.propagate()
            assert report.hop_count == hcn_ring(h, r)

    def test_hop_count_is_origin_independent(self):
        hops = set()
        for origin_index in range(4):
            engine = engine_for(ring_size=3, height=3)
            engine.member_join(engine.hierarchy.access_proxies()[origin_index * 5], "probe")
            hops.add(engine.propagate().hop_count)
        assert len(hops) == 1

    def test_every_ring_runs_at_least_one_round(self):
        engine = engine_for(ring_size=3, height=2)
        engine.member_join(engine.hierarchy.access_proxies()[0], "alice")
        report = engine.propagate()
        assert report.rings_involved == set(engine.hierarchy.rings)

    def test_without_downward_dissemination_only_the_upward_path_is_involved(self):
        engine = engine_for(ring_size=3, height=2, disseminate_downward=False)
        engine.member_join(engine.hierarchy.access_proxies()[0], "alice")
        report = engine.propagate()
        # Only the origin AP ring and the topmost ring circulate the change.
        assert len(report.rings_involved) == 2
        assert report.hop_count < hcn_ring(2, 3)
        assert engine.global_guids() == ["alice"]


class TestLeaveHandoffFailure:
    def test_leave_removes_member_everywhere(self):
        engine = engine_for()
        ap = engine.hierarchy.access_proxies()[0]
        engine.member_join(ap, "alice")
        engine.propagate()
        engine.member_leave(ap, "alice")
        engine.propagate()
        assert engine.global_guids() == []
        assert engine.entity(ap).local_members.guids() == []

    def test_member_failure_removes_member(self):
        engine = engine_for()
        ap = engine.hierarchy.access_proxies()[0]
        engine.member_join(ap, "alice")
        engine.propagate()
        engine.member_failure(ap, "alice")
        engine.propagate()
        assert engine.global_guids() == []

    def test_handoff_moves_member_between_rings(self):
        engine = engine_for(ring_size=3, height=2)
        aps = engine.hierarchy.access_proxies()
        old_ap, new_ap = aps[0], aps[-1]
        assert engine.hierarchy.ring_of(old_ap).ring_id != engine.hierarchy.ring_of(new_ap).ring_id
        engine.member_join(old_ap, "alice")
        engine.propagate()
        engine.member_handoff("alice", old_ap, new_ap)
        engine.propagate()
        assert engine.global_guids() == ["alice"]
        record = engine.entity(new_ap).local_members.get("alice")
        assert record is not None and record.ap == new_ap
        assert engine.entity(old_ap).local_members.guids() == []

    def test_handoff_within_ring_updates_neighbor_lists(self):
        engine = engine_for(ring_size=3, height=2)
        ring = engine.hierarchy.bottom_rings()[0]
        a, b = ring.members[0], ring.members[1]
        engine.member_join(a, "alice")
        engine.propagate()
        engine.member_handoff("alice", a, b)
        engine.propagate()
        assert "alice" in engine.entity(a).neighbor_members.guids()
        assert "alice" in engine.entity(b).local_members.guids()

    def test_handoff_changes_luid_but_not_guid(self):
        engine = engine_for()
        aps = engine.hierarchy.access_proxies()
        engine.member_join(aps[0], "alice")
        engine.propagate()
        before = engine.global_membership()[0]
        engine.member_handoff("alice", aps[0], aps[1])
        engine.propagate()
        after = engine.global_membership()[0]
        assert before.guid == after.guid
        assert before.luid != after.luid

    def test_join_at_failed_ap_rejected(self):
        engine = engine_for()
        ap = engine.hierarchy.access_proxies()[0]
        engine.fail_entity(ap)
        with pytest.raises(ProtocolError):
            engine.member_join(ap, "alice")

    def test_leave_of_unknown_member_still_propagates(self):
        engine = engine_for()
        ap = engine.hierarchy.access_proxies()[0]
        engine.member_leave(ap, "ghost")
        report = engine.propagate()
        assert report.round_count > 0
        assert engine.global_guids() == []


class TestAggregation:
    def test_burst_of_joins_shares_rounds(self):
        engine = engine_for(ring_size=3, height=2)
        ap = engine.hierarchy.access_proxies()[0]
        for i in range(5):
            engine.member_join(ap, f"m{i}")
        report = engine.propagate()
        assert sorted(engine.global_guids()) == [f"m{i}" for i in range(5)]
        # Aggregation means far fewer hops than 5 independent propagations.
        assert report.hop_count < 5 * hcn_ring(2, 3)

    def test_join_then_leave_before_propagation_is_invisible(self):
        engine = engine_for()
        ap = engine.hierarchy.access_proxies()[0]
        engine.member_join(ap, "alice")
        engine.member_leave(ap, "alice")
        report = engine.propagate()
        assert engine.global_guids() == []
        assert report.events == []


class TestEntityFailureRepair:
    def test_failed_ap_is_excluded_and_members_reported(self):
        engine = engine_for(ring_size=3, height=2)
        ring = engine.hierarchy.bottom_rings()[0]
        victim, survivor = ring.members[1], ring.members[0]
        engine.member_join(victim, "alice")
        engine.propagate()
        engine.fail_entity(victim)
        engine.member_join(survivor, "bob")
        report = engine.propagate()
        assert victim in report.repaired
        assert victim not in ring.members
        assert engine.global_guids() == ["bob"]

    def test_failed_leader_triggers_reelection(self):
        engine = engine_for(ring_size=3, height=2)
        ring = engine.hierarchy.bottom_rings()[0]
        leader = ring.leader
        survivor = next(m for m in ring.members if m != leader)
        engine.fail_entity(leader)
        engine.member_join(survivor, "bob")
        engine.propagate()
        assert ring.leader is not None and ring.leader != leader
        assert engine.global_guids() == ["bob"]

    def test_repair_reattaches_orphan_child_rings(self):
        engine = engine_for(ring_size=3, height=3)
        # Fail a middle-tier node that parents an AP ring.
        middle_ring = engine.hierarchy.rings_in_tier(2)[0]
        victim = next(
            node for node in middle_ring.members if engine.hierarchy.children_of_node(node)
        )
        orphan_rings = engine.hierarchy.children_of_node(victim)
        engine.fail_entity(victim)
        engine.detect_and_repair(victim)
        for ring_id in orphan_rings:
            new_parent = engine.hierarchy.parent_of_ring(ring_id)
            assert new_parent is not None and new_parent != victim
            assert engine.is_operational(new_parent)

    def test_detect_and_repair_requires_failed_entity(self):
        engine = engine_for()
        with pytest.raises(ProtocolError):
            engine.detect_and_repair(engine.hierarchy.access_proxies()[0])

    def test_propagation_still_converges_after_two_failures_in_a_ring(self):
        engine = engine_for(ring_size=5, height=2)
        ring = engine.hierarchy.bottom_rings()[0]
        victims = [ring.members[1], ring.members[3]]
        survivor = ring.members[0]
        for victim in victims:
            engine.fail_entity(victim)
        engine.member_join(survivor, "alice")
        engine.propagate()
        assert engine.global_guids() == ["alice"]
        assert all(v not in ring.members for v in victims)


class TestRoundMechanics:
    def test_round_visits_members_in_circulation_order(self, one_round_engine):
        hierarchy = one_round_engine.hierarchy
        ring = hierarchy.bottom_rings()[0]
        holder = ring.members[1]
        one_round_engine.member_join(holder, "alice")
        result = one_round_engine.run_round(ring.ring_id, holder=holder)
        assert result.visited == ring.members_from(holder)
        assert result.token_hops == len(ring.members)

    def test_holder_must_be_ring_member(self, one_round_engine):
        ring = one_round_engine.hierarchy.bottom_rings()[0]
        with pytest.raises(ProtocolError):
            one_round_engine.run_round(ring.ring_id, holder="not-a-member")

    def test_empty_round_produces_no_notifications(self, one_round_engine):
        ring = one_round_engine.hierarchy.bottom_rings()[0]
        result = one_round_engine.run_round(ring.ring_id)
        assert result.operations == ()
        assert result.notify_hops == 0

    def test_control_transfers_to_next_holder(self, one_round_engine):
        ring = one_round_engine.hierarchy.bottom_rings()[0]
        holder = ring.members[0]
        one_round_engine.member_join(holder, "alice")
        one_round_engine.run_round(ring.ring_id, holder=holder)
        assert one_round_engine._ring_holder[ring.ring_id] == ring.successor(holder)

    def test_events_observed_at_top_leader(self):
        engine = engine_for(ring_size=3, height=2)
        top_leader = engine.hierarchy.topmost_ring().leader
        engine.member_join(engine.hierarchy.access_proxies()[0], "alice")
        engine.propagate()
        observers = {e.observer for e in engine.event_bus.history}
        assert top_leader in observers

    def test_propagation_divergence_guard(self):
        engine = engine_for()
        engine.member_join(engine.hierarchy.access_proxies()[0], "alice")
        with pytest.raises(ProtocolError):
            engine.propagate(max_iterations=0)
