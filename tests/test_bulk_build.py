"""Bulk-construction and topology-snapshot equivalence (PR 5).

The bulk build path (vectorised interned identifiers, trusted ring
registration, raw-slot entity states, lockstep kernel wiring) must produce
state indistinguishable from the seed's incremental construction, and a
matrix cell rehydrated from a :class:`repro.sim.harness.TopologySnapshot`
must be bit-identical (by record fingerprint) to a fresh-build cell, both
sequentially and across pool workers.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchy import HierarchyBuilder
from repro.core.identifiers import NodeId
from repro.core.kernel import TokenRoundKernel
from repro.sim.harness import (
    HarnessConfig,
    HarnessError,
    ScenarioHarness,
    TopologySnapshot,
    build_topology_snapshot,
)
from repro.workloads.matrix import (
    MatrixCell,
    TopologySnapshotCache,
    run_matrix_cell,
)
from repro.workloads.parallel import result_fingerprint, run_cells

#: (ring_size, height) shapes spanning the 1k and 10k scales the bulk path
#: must match the reference construction on, plus skinny/deep outliers.
SHAPES = [(10, 3), (4, 5), (2, 10), (10, 4)]


# ---------------------------------------------------------------------------
# bulk build == incremental build
# ---------------------------------------------------------------------------


@settings(deadline=None, max_examples=8)
@given(shape=st.sampled_from(SHAPES))
def test_bulk_regular_hierarchy_equals_incremental(shape):
    ring_size, height = shape
    bulk = HierarchyBuilder("prop").regular(ring_size, height)
    incremental = HierarchyBuilder("prop").regular(ring_size, height, bulk=False)

    assert list(bulk.rings) == list(incremental.rings)
    for ring_id, bulk_ring in bulk.rings.items():
        reference = incremental.rings[ring_id]
        assert bulk_ring.members == reference.members
        assert bulk_ring.leader == reference.leader
        assert bulk_ring.tier == reference.tier
    assert bulk.parent_node == incremental.parent_node
    assert bulk.child_rings == incremental.child_rings
    assert bulk.ring_of_node == incremental.ring_of_node
    assert bulk.tier_labels == incremental.tier_labels
    # The bulk path skips construction-time validation; its output must still
    # pass the deep validator.
    bulk.validate()

    # Successor/predecessor maps agree for every node of every ring.
    for ring_id, bulk_ring in bulk.rings.items():
        reference = incremental.rings[ring_id]
        for node in bulk_ring.members:
            assert bulk_ring.successor(node) == reference.successor(node)
            assert bulk_ring.predecessor(node) == reference.predecessor(node)


@settings(deadline=None, max_examples=8)
@given(shape=st.sampled_from(SHAPES))
def test_bulk_entity_states_equal_incremental(shape):
    ring_size, height = shape
    hierarchy = HierarchyBuilder("prop").regular(ring_size, height)
    bulk_states = hierarchy.build_entity_states()
    reference_states = hierarchy.build_entity_states(bulk=False)

    assert list(bulk_states) == list(reference_states)
    for node, bulk_state in bulk_states.items():
        assert bulk_state.summary() == reference_states[node].summary()
        assert bulk_state.aggregate_mq == reference_states[node].aggregate_mq


@settings(deadline=None, max_examples=6)
@given(shape=st.sampled_from(SHAPES[:3]))
def test_bulk_kernel_coverage_matches_incremental_and_ancestor_walk(shape):
    ring_size, height = shape
    bulk_kernel = TokenRoundKernel(HierarchyBuilder("prop").regular(ring_size, height))
    reference_kernel = TokenRoundKernel(
        HierarchyBuilder("prop").regular(ring_size, height, bulk=False)
    )
    aps = [node for node in bulk_kernel.hierarchy.access_proxies()]
    for ring_id in bulk_kernel.hierarchy.rings:
        covered = bulk_kernel.coverage(ring_id)
        assert covered == reference_kernel.coverage(ring_id)
        # The batched apply path's ancestor-chain test is a drop-in
        # replacement for the materialised coverage sets.
        walked = {ap.value for ap in aps if bulk_kernel.ring_covers(ring_id, ap)}
        assert walked == covered


def test_ring_covers_tracks_repair():
    """Coverage verdicts follow hierarchy surgery immediately."""
    kernel = TokenRoundKernel(HierarchyBuilder("repair").regular(4, 3))
    victim = kernel.hierarchy.access_proxies()[0]
    ring_id = kernel.hierarchy.ring_of(victim).ring_id
    top_ring_id = kernel.hierarchy.topmost_ring().ring_id
    assert kernel.ring_covers(ring_id, victim)
    assert kernel.ring_covers(top_ring_id, victim)
    kernel.fail_entity(victim)
    kernel.detect_and_repair(victim)
    assert not kernel.ring_covers(ring_id, victim)
    assert not kernel.ring_covers(top_ring_id, victim)
    for rid in kernel.hierarchy.rings:
        walked = {
            ap.value
            for ap in kernel.hierarchy.access_proxies()
            if kernel.ring_covers(rid, ap)
        }
        assert walked == kernel.coverage(rid)


# ---------------------------------------------------------------------------
# topology snapshots
# ---------------------------------------------------------------------------


def test_snapshot_harness_equals_fresh_harness():
    snapshot = build_topology_snapshot(4, 3)
    config = HarnessConfig(ring_size=4, height=3, seed=7, loss=0.01)
    fresh = ScenarioHarness(config)
    rehydrated = ScenarioHarness(config, snapshot=snapshot)

    assert list(fresh.hierarchy.rings) == list(rehydrated.hierarchy.rings)
    for ring_id, ring in fresh.hierarchy.rings.items():
        assert ring.members == rehydrated.hierarchy.rings[ring_id].members
        assert ring.leader == rehydrated.hierarchy.rings[ring_id].leader
    assert list(fresh.kernel.entities) == list(rehydrated.kernel.entities)
    for node, state in fresh.kernel.entities.items():
        assert state.summary() == rehydrated.kernel.entities[node].summary()
    # Interned identifiers are shared process-wide across both builds.
    sample = next(iter(fresh.kernel.entities))
    assert sample is next(iter(rehydrated.kernel.entities))
    # Same network shape, and the rehydrated cell owns its latency model.
    assert len(fresh.network) == len(rehydrated.network)
    assert len(fresh.network.links()) == len(rehydrated.network.links())
    assert rehydrated._latency.loss == config.loss


def test_snapshot_shape_mismatch_is_rejected():
    snapshot = build_topology_snapshot(4, 2)
    with pytest.raises(HarnessError):
        ScenarioHarness(HarnessConfig(ring_size=4, height=3), snapshot=snapshot)


def test_snapshot_cache_builds_each_shape_once():
    cache = TopologySnapshotCache()
    a = cache.for_cell(MatrixCell(scenario="churn", num_proxies=16, loss=0.0))
    b = cache.for_cell(MatrixCell(scenario="churn", num_proxies=16, loss=0.05))
    assert a is b and len(cache) == 1
    assert isinstance(a, TopologySnapshot)
    baseline_cell = MatrixCell(scenario="churn", num_proxies=16, loss=0.0, protocol="gossip")
    assert cache.for_cell(baseline_cell) is None


def test_snapshot_cells_bit_identical_to_fresh_under_jobs_1_and_4():
    """record_fingerprint(fresh build) == rehydrated, sequential and pooled."""
    cells = [
        MatrixCell(scenario=scenario, num_proxies=256, loss=loss, seed=seed)
        for scenario in ("churn", "partition_merge")
        for loss in (0.0, 0.05)
        for seed in (0, 3)
    ]
    fresh = [
        result_fingerprint(run_matrix_cell(cell, events=8, snapshot=None))
        for cell in cells
    ]
    sequential = run_cells(cells, events=8, jobs=1)
    pooled = run_cells(cells, events=8, jobs=4)
    assert sequential.ok and pooled.ok
    assert [result_fingerprint(r) for r in sequential.results] == fresh
    assert [result_fingerprint(r) for r in pooled.results] == fresh
