"""Unit tests for the live runtime's building blocks.

Everything here runs without sockets-between-processes: the wire codec and
link tracker are pure functions over bytes, the event loop is exercised
in-process with real (sub-millisecond) timers and a socketpair, and the
heartbeat monitor is driven by a fake clock — the state machine's whole
point is that it is clock-injectable and I/O-free.
"""

from __future__ import annotations

import socket

import pytest

from repro.runtime.heartbeat import HeartbeatConfig, HeartbeatMonitor, PeerHealth
from repro.runtime.loop import EventLoop
from repro.runtime.wire import (
    CHANNEL_MULTICAST,
    CHANNEL_UNICAST,
    MSG_HEARTBEAT,
    MSG_NOTIFY,
    MSG_TOKEN,
    LinkTracker,
    WireCodec,
    WireError,
    WireMessage,
)

# ---------------------------------------------------------------------------
# wire codec
# ---------------------------------------------------------------------------


def test_codec_roundtrip_preserves_header_and_payload():
    codec = WireCodec(shard_id=3)
    payload = {"sender": "L1-0000-0000", "ops": (1, 2, 3)}
    message = WireCodec.decode(codec.encode(MSG_NOTIFY, payload, dest_key=1))
    assert message.kind == MSG_NOTIFY
    assert message.sender_shard == 3
    assert message.channel == CHANNEL_UNICAST
    assert message.payload == payload


def test_codec_numbers_each_link_stream_independently():
    codec = WireCodec(shard_id=0)
    to_one = [WireCodec.decode(codec.encode(MSG_TOKEN, {}, dest_key=1)).seq for _ in range(3)]
    to_two = WireCodec.decode(codec.encode(MSG_TOKEN, {}, dest_key=2)).seq
    mcast = WireCodec.decode(
        codec.encode(MSG_HEARTBEAT, {}, dest_key="mcast", channel=CHANNEL_MULTICAST)
    ).seq
    assert to_one == [1, 2, 3]
    assert to_two == 1  # separate unicast link, separate stream
    assert mcast == 1  # multicast channel is its own link


def test_codec_rejects_garbage():
    codec = WireCodec(shard_id=0)
    good = codec.encode(MSG_TOKEN, {}, dest_key=1)
    with pytest.raises(WireError, match="short"):
        WireCodec.decode(b"RGB1")
    with pytest.raises(WireError, match="magic"):
        WireCodec.decode(b"XXXX" + good[4:])
    with pytest.raises(WireError, match="version"):
        WireCodec.decode(good[:4] + bytes([99]) + good[5:])
    with pytest.raises(WireError, match="kind"):
        WireCodec.decode(good[:5] + bytes([0]) + good[6:])
    with pytest.raises(WireError, match="payload"):
        WireCodec.decode(good[:-len(good) + 13] + b"not a pickle")
    with pytest.raises(WireError, match="unknown message kind"):
        codec.encode(0, {}, dest_key=1)
    with pytest.raises(WireError, match="split the batch"):
        codec.encode(MSG_NOTIFY, {"blob": b"x" * 70_000}, dest_key=1)


def test_link_tracker_classifies_new_duplicate_reordered():
    tracker = LinkTracker()

    def msg(seq, shard=1, channel=CHANNEL_UNICAST):
        return WireMessage(kind=MSG_TOKEN, sender_shard=shard, seq=seq, channel=channel, payload={})

    assert tracker.observe(msg(1)) == "new"
    assert tracker.observe(msg(2)) == "new"
    assert tracker.observe(msg(2)) == "duplicate"
    assert tracker.observe(msg(5)) == "new"  # jumps the frontier: 2 gaps
    assert tracker.observe(msg(4)) == "reordered"  # late fill-in closes one gap
    # Another sender/channel is a distinct link with its own numbering.
    assert tracker.observe(msg(1, shard=2)) == "new"
    assert tracker.observe(msg(1, channel=CHANNEL_MULTICAST)) == "new"

    stats = tracker.summary()["1:0"]
    assert stats == {"received": 5, "duplicates": 1, "reordered": 1, "gaps": 1, "highest": 5}


# ---------------------------------------------------------------------------
# event loop
# ---------------------------------------------------------------------------


def test_loop_fires_timers_in_order_and_honours_cancel():
    loop = EventLoop()
    fired = []
    loop.call_later(0.02, lambda: fired.append("b"))
    loop.call_later(0.001, lambda: fired.append("a"))
    cancelled = loop.call_later(0.005, lambda: fired.append("never"))
    cancelled.cancel()
    loop.call_later(0.03, loop.stop)
    loop.run()
    loop.close()
    assert fired == ["a", "b"]


def test_loop_dispatches_reader_callbacks():
    left, right = socket.socketpair()
    loop = EventLoop()
    got = []

    def on_readable(sock):
        got.append(sock.recv(64))
        loop.stop()

    loop.add_reader(right, on_readable)
    left.send(b"ping")
    assert loop.run_until(lambda: bool(got), timeout=2.0)
    loop.remove_reader(right)
    loop.close()
    left.close()
    right.close()
    assert got == [b"ping"]


def test_loop_run_until_times_out():
    loop = EventLoop()
    assert loop.run_until(lambda: False, timeout=0.05) is False
    loop.close()


def test_loop_timers_pending_excludes_cancelled():
    loop = EventLoop()
    keep = loop.call_later(60, lambda: None)
    drop = loop.call_later(60, lambda: None)
    drop.cancel()
    assert loop.timers_pending() == 1
    keep.cancel()
    loop.close()


# ---------------------------------------------------------------------------
# heartbeat monitor (fake clock)
# ---------------------------------------------------------------------------


CFG = HeartbeatConfig(interval=0.1, suspect_after=0.5, evict_after=1.5)


class _Clock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def test_heartbeat_config_validates_ordering():
    with pytest.raises(ValueError):
        HeartbeatConfig(interval=0.5, suspect_after=0.3, evict_after=1.0)
    with pytest.raises(ValueError):
        HeartbeatConfig(interval=0.1, suspect_after=0.5, evict_after=0.5)


def test_suspect_then_readmit_runs_no_eviction():
    clock = _Clock()
    events = []
    monitor = HeartbeatMonitor(
        [1, 2],
        CFG,
        clock=clock,
        on_suspect=lambda p, s: events.append(("suspect", p)),
        on_readmit=lambda p, s: events.append(("readmit", p)),
        on_evict=lambda p, s: events.append(("evict", p)),
    )
    clock.now += 0.6  # past suspect_after, short of evict_after
    assert monitor.poll() == []
    assert monitor.state(1) is PeerHealth.SUSPECT
    assert monitor.state(2) is PeerHealth.SUSPECT
    # Peer 1 speaks up again: SIGSTOP/GC-pause survivors re-admit, no repair.
    monitor.heartbeat_received(1)
    assert monitor.state(1) is PeerHealth.ALIVE
    assert monitor.counters() == {"suspicions": 2, "readmissions": 1, "evictions": 0}
    assert ("readmit", 1) in events and ("evict", 1) not in events


def test_eviction_is_terminal_and_records_silence():
    clock = _Clock()
    monitor = HeartbeatMonitor([7], CFG, clock=clock)
    clock.now += 2.0
    assert monitor.poll() == [7]
    assert monitor.state(7) is PeerHealth.EVICTED
    assert monitor.eviction_silence[7] == pytest.approx(2.0)
    # A late heartbeat cannot un-run the repair surgery.
    monitor.heartbeat_received(7)
    assert monitor.state(7) is PeerHealth.EVICTED
    assert monitor.evicted_peers() == [7]
    # Straight-to-evicted still counts the suspicion it implies.
    assert monitor.counters() == {"suspicions": 1, "readmissions": 0, "evictions": 1}


def test_initial_grace_absorbs_handshake_skew():
    clock = _Clock()
    monitor = HeartbeatMonitor([1], CFG, clock=clock, initial_grace=1.0)
    clock.now += 1.2  # would be past evict_after without the grace credit
    assert monitor.poll() == []
    assert monitor.state(1) is PeerHealth.ALIVE
    clock.now += 1.5  # grace spent: silence accrues from the credited point
    assert monitor.poll() == [1]


def test_unknown_peer_heartbeats_are_ignored():
    clock = _Clock()
    monitor = HeartbeatMonitor([1], CFG, clock=clock)
    monitor.heartbeat_received(99)  # no KeyError, no state created
    clock.now += 0.6
    monitor.poll()
    assert monitor.state(1) is PeerHealth.SUSPECT
    with pytest.raises(KeyError):
        monitor.state(99)
