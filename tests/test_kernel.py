"""Unit tests for the unified token-round kernel and the batched paths."""

from __future__ import annotations

import pytest

from repro.core.config import ProtocolConfig
from repro.core.deltas import MembershipDelta
from repro.core.handoff import HandoffManager
from repro.core.hierarchy import HierarchyBuilder
from repro.core.identifiers import GloballyUniqueId, GroupId, NodeId, make_luid
from repro.core.kernel import ProtocolError, TokenRoundKernel
from repro.core.member import MemberInfo, MemberStatus
from repro.core.membership import MembershipView
from repro.core.one_round import OneRoundEngine
from repro.core.partition import PartitionManager
from repro.workloads.scenarios import run_large_scale_scenario


def make_engine(ring_size=3, height=2, **protocol_kwargs) -> OneRoundEngine:
    protocol_kwargs.setdefault("aggregation_delay", 0.0)
    hierarchy = HierarchyBuilder("kernel-test").regular(ring_size=ring_size, height=height)
    return OneRoundEngine(hierarchy, config=ProtocolConfig(**protocol_kwargs))


class TestKernelSharedMachinery:
    def test_both_drivers_expose_the_same_kernel_type(self):
        from repro.core.simulation import RGBSimulation
        from repro.core.config import SimulationConfig

        structural = RGBSimulation(
            SimulationConfig(num_aps=6, ring_size=3, hosts_per_ap=0)
        ).build()
        event = RGBSimulation(
            SimulationConfig(num_aps=6, ring_size=3, hosts_per_ap=0, engine_mode="event")
        ).build()
        assert isinstance(structural.kernel, TokenRoundKernel)
        assert isinstance(event.kernel, TokenRoundKernel)

    def test_coverage_matches_ancestry_definition(self):
        engine = make_engine(ring_size=3, height=3)
        kernel = engine.kernel
        hierarchy = engine.hierarchy
        for ring_id, ring in hierarchy.rings.items():
            expected = set()
            members = set(ring.members)
            for ap in hierarchy.access_proxies():
                if ap in members or any(a in members for a in hierarchy.ancestry(ap)):
                    expected.add(ap.value)
            assert kernel.coverage(ring_id) == expected

    def test_drain_for_round_reports_out_of_ring_senders(self):
        engine = make_engine()
        kernel = engine.kernel
        ring = engine.hierarchy.bottom_rings()[0]
        holder = ring.members[0]
        op = kernel.make_join_op(holder, "alice")
        outside = engine.hierarchy.topmost_ring().members[0]
        kernel.entity(holder).mq.insert(op, sender=outside, now=0.0)
        operations, child_senders = kernel.drain_for_round(kernel.entity(holder), ring.members)
        assert operations == (op,)
        assert child_senders == [outside]

    def test_upward_target_requires_leader_and_healthy_parent(self):
        engine = make_engine()
        kernel = engine.kernel
        ring = engine.hierarchy.bottom_rings()[0]
        leader_entity = kernel.entity(ring.leader)
        follower = next(n for n in ring.members if n != ring.leader)
        assert kernel.upward_target(leader_entity, ring.leader) == leader_entity.parent
        assert kernel.upward_target(kernel.entity(follower), ring.leader) is None
        leader_entity.parent_ok = False
        assert kernel.upward_target(leader_entity, ring.leader) is None

    def test_ack_targets_dedupe_preserving_order(self):
        engine = make_engine()
        a, b = NodeId("a"), NodeId("b")
        assert engine.kernel.ack_targets([b, a, b, a]) == [b, a]

    def test_capture_requires_known_entity(self):
        engine = make_engine()
        with pytest.raises(ProtocolError):
            engine.kernel.capture("no-such-node", engine.kernel.make_join_op(
                engine.hierarchy.access_proxies()[0], "ghost"
            ), 0.0)


class TestBatchedEquivalenceInEngines:
    @pytest.mark.parametrize("batched", [True, False])
    def test_propagation_same_views_and_hops(self, batched):
        engine = make_engine(ring_size=3, height=3, batched_apply=batched)
        aps = engine.hierarchy.access_proxies()
        for index, ap in enumerate(aps[:9]):
            engine.member_join(ap, f"m-{index:03d}")
        report = engine.propagate()
        assert len(engine.global_guids()) == 9
        for ring_id in engine.hierarchy.rings:
            assert engine.ring_agreement(ring_id)
        # Hop counts are a pure protocol property — identical in both modes.
        reference = make_engine(ring_size=3, height=3, batched_apply=not batched)
        for index, ap in enumerate(aps[:9]):
            reference.member_join(ap, f"m-{index:03d}")
        assert reference.propagate().hop_count == report.hop_count
        assert reference.global_guids() == engine.global_guids()

    def test_handoff_batch_propagates_once(self):
        engine = make_engine(ring_size=3, height=2)
        aps = [str(a) for a in engine.hierarchy.access_proxies()]
        for i in range(3):
            engine.member_join(aps[i], f"m-{i}")
        engine.propagate()
        manager = HandoffManager(engine)
        moves = [(f"m-{i}", aps[i], aps[(i + 1) % len(aps)]) for i in range(3)]
        report = manager.handoff_batch(moves, now=1.0)
        assert report is not None
        assert manager.stats.total == 3
        assert sorted(engine.global_guids()) == ["m-0", "m-1", "m-2"]
        for i in range(3):
            record = engine.entity(aps[(i + 1) % len(aps)]).local_members.get(f"m-{i}")
            assert record is not None


class TestPartitionMergeDelta:
    def _view(self, name, members):
        view = MembershipView(name, NodeId("obs"), GroupId("g"))
        for guid, ap in members:
            view.add(
                MemberInfo(
                    guid=GloballyUniqueId(guid),
                    group=GroupId("g"),
                    ap=NodeId(ap),
                    luid=make_luid(ap, guid, 1),
                    status=MemberStatus.OPERATIONAL,
                )
            )
        return view

    def test_merge_views_applies_single_delta(self):
        primary = self._view("primary", [("a", "ap-1")])
        detached = [
            self._view("d1", [("b", "ap-2"), ("c", "ap-3")]),
            self._view("d2", [("c", "ap-3"), ("d", "ap-4")]),
        ]
        gained = PartitionManager.merge_views(primary, detached)
        assert gained == 3
        assert primary.guids() == ["a", "b", "c", "d"]

    def test_merge_delta_net_filters_across_views(self):
        detached = [
            self._view("d1", [("x", "ap-1")]),
            self._view("d2", [("x", "ap-2")]),
        ]
        delta = PartitionManager.merge_delta(detached)
        assert delta.guids() == ["x"]


class TestLargeScaleScenarioSmall:
    def test_small_configuration_runs_end_to_end(self):
        result = run_large_scale_scenario(ring_size=3, height=2, joins=5, verify_rings=4)
        assert result.final_membership == 5
        assert result.details["access_proxies"] == 9
        assert result.details["sampled_ring_agreement"] is True
        assert result.details["rounds"] >= result.details["rings"]
