"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.reliability import (
    hierarchy_function_well_probability,
    ring_function_well_probability,
)
from repro.analysis.scalability import hcn_ring, hcn_tree, hcn_tree_without_representatives
from repro.core.config import ProtocolConfig
from repro.core.hierarchy import HierarchyBuilder
from repro.core.identifiers import GloballyUniqueId, GroupId, NodeId, make_luid
from repro.core.member import MemberInfo, MemberStatus
from repro.core.membership import MembershipView
from repro.core.message_queue import MessageQueue
from repro.core.one_round import OneRoundEngine
from repro.core.ring import LogicalRing
from repro.sim.engine import SimulationEngine
from repro.sim.stats import Histogram


names = st.integers(min_value=0, max_value=40).map(lambda i: f"n{i:02d}")
unique_name_lists = st.lists(names, min_size=1, max_size=12, unique=True)
guids = st.integers(min_value=0, max_value=20).map(lambda i: f"m{i:02d}")


def make_member(guid: str, ap: str = "ap-0") -> MemberInfo:
    return MemberInfo(
        guid=GloballyUniqueId(guid),
        group=GroupId("g"),
        ap=NodeId(ap),
        luid=make_luid(ap, guid, 1),
        status=MemberStatus.OPERATIONAL,
    )


class TestRingProperties:
    @given(unique_name_lists)
    def test_successor_predecessor_are_inverse(self, members):
        ring = LogicalRing(ring_id="r", tier=1, members=[NodeId(m) for m in members])
        for node in ring.members:
            assert ring.predecessor(ring.successor(node)) == node
            assert ring.successor(ring.predecessor(node)) == node

    @given(unique_name_lists)
    def test_members_from_is_a_rotation(self, members):
        ring = LogicalRing(ring_id="r", tier=1, members=[NodeId(m) for m in members])
        for node in ring.members:
            rotated = ring.members_from(node)
            assert sorted(rotated) == sorted(ring.members)
            assert rotated[0] == node

    @given(unique_name_lists, st.data())
    def test_remove_then_elect_keeps_invariants(self, members, data):
        ring = LogicalRing(ring_id="r", tier=1, members=[NodeId(m) for m in members])
        victim = data.draw(st.sampled_from(ring.members))
        ring.remove_member(victim)
        ring.elect_leader()
        ring.validate()
        assert victim not in ring.members
        if ring.members:
            assert ring.leader == min(ring.members, key=lambda n: n.value)

    @given(unique_name_lists, st.data())
    def test_partition_count_bounded_by_fault_count(self, members, data):
        ring = LogicalRing(ring_id="r", tier=1, members=[NodeId(m) for m in members])
        faulty = set(data.draw(st.lists(st.sampled_from(members), unique=True)))
        operational = [m for m in members if m not in faulty]
        count = ring.partition_count(operational)
        if not operational:
            assert count == 0
        elif len(faulty) <= 1:
            assert count == 1
        else:
            assert 1 <= count <= len(faulty)


class TestMembershipViewProperties:
    @given(st.lists(st.tuples(guids, st.booleans()), max_size=40))
    def test_view_size_matches_reference_set(self, operations):
        view = MembershipView("ring", NodeId("x"), GroupId("g"))
        reference = set()
        for guid, join in operations:
            if join:
                view.add(make_member(guid))
                reference.add(guid)
            else:
                view.remove(guid)
                reference.discard(guid)
        assert set(view.guids()) == reference

    @given(st.lists(guids, unique=True, max_size=15), st.lists(guids, unique=True, max_size=15))
    def test_merge_is_union(self, left, right):
        a = MembershipView("a", NodeId("x"), GroupId("g"))
        b = MembershipView("b", NodeId("y"), GroupId("g"))
        for guid in left:
            a.add(make_member(guid))
        for guid in right:
            b.add(make_member(guid))
        a.merge_from(b)
        assert set(a.guids()) == set(left) | set(right)


class TestMessageQueueProperties:
    @given(st.lists(st.tuples(guids, st.sampled_from(["join", "leave"])), max_size=30))
    def test_aggregated_queue_never_larger_than_plain(self, events):
        from repro.core.token import TokenOperation, TokenOperationType

        def op_for(guid, kind, seq):
            op_type = (
                TokenOperationType.MEMBER_JOIN if kind == "join" else TokenOperationType.MEMBER_LEAVE
            )
            return TokenOperation(
                op_type=op_type, origin=NodeId("ap-0"), member=make_member(guid), sequence=seq
            )

        aggregated = MessageQueue(NodeId("ap-0"), aggregate=True)
        plain = MessageQueue(NodeId("ap-0"), aggregate=False)
        for seq, (guid, kind) in enumerate(events, start=1):
            aggregated.insert(op_for(guid, kind, seq), NodeId("ap-0"), float(seq))
            plain.insert(op_for(guid, kind, seq), NodeId("ap-0"), float(seq))
        assert len(aggregated) <= len(plain)
        # At most one pending operation per member survives aggregation.
        drained = aggregated.drain()
        per_member = [op.member.guid for op in drained]
        assert len(per_member) == len(set(per_member))


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=40))
    def test_events_dispatch_in_nondecreasing_time_order(self, delays):
        engine = SimulationEngine()
        seen = []
        for delay in delays:
            engine.schedule(delay, lambda e: seen.append(e.now))
        engine.run()
        assert seen == sorted(seen)
        assert len(seen) == len(delays)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
    def test_histogram_summary_bounds(self, samples):
        hist = Histogram("x")
        hist.extend(samples)
        # Tolerate float rounding of the mean for pathological tiny values.
        slack = 1e-9 * max(1.0, abs(hist.min()), abs(hist.max()))
        assert hist.min() - slack <= hist.mean() <= hist.max() + slack
        assert hist.min() - slack <= hist.percentile(50) <= hist.max() + slack


class TestAnalysisProperties:
    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=2, max_value=8))
    def test_hcn_ring_positive_and_increasing_in_height(self, height, ring_size):
        assert hcn_ring(height, ring_size) > 0
        assert hcn_ring(height + 1, ring_size) > hcn_ring(height, ring_size)

    @given(st.integers(min_value=3, max_value=6), st.integers(min_value=2, max_value=8))
    def test_tree_with_representatives_cheaper_than_without(self, height, branching):
        assert hcn_tree(height, branching) <= hcn_tree_without_representatives(height, branching)

    @given(
        st.integers(min_value=2, max_value=20),
        st.floats(min_value=0.0, max_value=0.5),
    )
    def test_ring_function_well_probability_in_unit_interval(self, ring_size, f):
        p = ring_function_well_probability(ring_size, f)
        assert 0.0 <= p <= 1.0

    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=2, max_value=6),
        st.floats(min_value=0.0, max_value=0.2),
    )
    def test_hierarchy_probability_monotone_in_fault_rate(self, height, ring_size, f):
        lower = hierarchy_function_well_probability(height, ring_size, f, 1)
        higher = hierarchy_function_well_probability(height, ring_size, min(0.5, f + 0.1), 1)
        assert lower >= higher - 1e-12


class TestOneRoundProperties:
    @settings(deadline=None, max_examples=20)
    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=2, max_value=3),
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=6, unique=True),
    )
    def test_global_view_always_equals_joined_set(self, ring_size, height, member_ids):
        hierarchy = HierarchyBuilder("g").regular(ring_size=ring_size, height=height)
        engine = OneRoundEngine(hierarchy, config=ProtocolConfig(aggregation_delay=0.0))
        aps = hierarchy.access_proxies()
        expected = set()
        for index, member_id in enumerate(member_ids):
            guid = f"member-{member_id}"
            engine.member_join(aps[index % len(aps)], guid)
            expected.add(guid)
        engine.propagate()
        assert set(engine.global_guids()) == expected
        for ring_id in hierarchy.rings:
            assert engine.ring_agreement(ring_id)
