"""End-to-end tests for the live UDP runtime.

These spawn real OS processes wired over loopback UDP and are therefore the
slowest tests in the tree (a few seconds each).  They assert the properties
the unit tests cannot: that the socket driver's membership trace is
*equivalent to the simulator's* for the same scenario script, and that the
heartbeat failure detector actually notices real SIGKILL / SIGSTOP events
within its configured windows.
"""

from __future__ import annotations

import socket

import pytest

from repro.runtime.heartbeat import HeartbeatConfig
from repro.runtime.runner import LiveScenarioConfig, LiveScenarioRunner
from repro.runtime.supervisor import StopSpec


def _loopback_udp_available() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


pytestmark = pytest.mark.skipif(
    not _loopback_udp_available(), reason="loopback UDP sockets unavailable"
)


def test_live_run_matches_sim_through_sigkill():
    """Four shard processes, one SIGKILLed mid-scenario: the surviving live
    run must converge to the same global membership as the simulator running
    the identical script with the equivalent crash injected."""
    runner = LiveScenarioRunner(LiveScenarioConfig(events=12, seed=7, crash_at=12.0))
    result = runner.run()
    report = result.live_report
    assert report.killed_shards == [runner.victim]
    assert report.clean_shutdown, report.errors
    # Every survivor independently evicted the killed shard via heartbeats.
    for shard, res in report.surviving_results().items():
        assert runner.victim in res["evicted_peers"], (shard, res["heartbeat"])
    assert result.live_ring_agreement
    assert result.equal, {"summary": result.summary(), "diff": result.diff}


def test_sigkill_detected_and_repaired_within_window():
    """Kill the shard owning the top ring and check the survivor's failure
    handling end to end: eviction within the heartbeat window, kernel ring
    repair of the dead entities, and dead-lettering (not silent loss) of the
    upward notifications that no longer have a live destination."""
    hb = HeartbeatConfig()  # defaults: suspect 0.3s, evict 0.9s (real time)
    config = LiveScenarioConfig(
        events=8,
        seed=3,
        num_shards=2,
        crash_at=6.0,  # pinned to the quiet-window margin by the runner
        kill_shard=0,  # shard 0 owns only the top ring
        heartbeat=hb,
    )
    runner = LiveScenarioRunner(config)
    assert runner.victim == 0
    import tempfile

    with tempfile.TemporaryDirectory(prefix="live-runtime-test-") as scratch:
        report, supervisor = runner.run_live(scratch)
        supervisor.ensure_torn_down()

    assert report.killed_shards == [0]
    assert report.clean_shutdown, report.errors
    survivor = report.results[1]
    # Detected: the dead shard was evicted, and the recorded silence is the
    # eviction window plus at most polling slop — not some much-later fluke.
    assert 0 in survivor["evicted_peers"], survivor["heartbeat"]
    silence = survivor["eviction_silence"][0]
    assert hb.evict_after <= silence <= hb.evict_after + 1.0, silence
    # Repaired: eviction fed fail_entity, and rerouted notifications forced
    # ring repair of the dead top-tier entities.
    counters = survivor["counters"]
    assert counters.get("repairs.ring", 0) >= 1, counters
    # Not silently lost: with the whole top ring dead there is no live
    # destination for upward notifications; they must land in the dead-letter
    # stash (visible, re-injectable) rather than vanish.
    assert counters.get("harness.notify_dead_lettered", 0) >= 1, counters
    assert survivor["dead_letters"] >= 1
    assert survivor["ring_agreement"]


def test_sigstop_survivor_readmits_without_eviction():
    """A SIGSTOPped shard (GC-pause / scheduler stall stand-in) must be
    suspected and then readmitted once it resumes — no eviction, no repair,
    and the run still conforms to the simulator's membership trace."""
    hb = HeartbeatConfig(interval=0.06, suspect_after=0.25, evict_after=3.0)
    config = LiveScenarioConfig(events=10, seed=11, heartbeat=hb)
    runner = LiveScenarioRunner(config)
    import tempfile

    with tempfile.TemporaryDirectory(prefix="live-runtime-test-") as scratch:
        # at= is virtual scenario time; duration= is real seconds.  0.5s of
        # stop crosses suspect_after on every peer but stays well inside
        # evict_after, so the only legal outcome is suspicion + readmission.
        stops = (StopSpec(shard=2, at=6.0, duration=0.5),)
        report, supervisor = runner.run_live(scratch, stops=stops)
        supervisor.ensure_torn_down()
        harness = runner.run_sim_reference()
        result = runner.compare(report, harness)

    assert report.clean_shutdown, report.errors
    readmissions = sum(r["heartbeat"].get("readmissions", 0) for r in report.results.values())
    evictions = sum(r["heartbeat"].get("evictions", 0) for r in report.results.values())
    assert readmissions >= 1, {s: r["heartbeat"] for s, r in report.results.items()}
    assert evictions == 0, {s: r["heartbeat"] for s, r in report.results.items()}
    for res in report.results.values():
        assert res["evicted_peers"] == []
        assert res["counters"].get("repairs.ring", 0) == 0
    assert result.equal, {"summary": result.summary(), "diff": result.diff}
