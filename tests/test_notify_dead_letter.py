"""Regression tests for the notification dead-letter path.

The bug: ``ScenarioHarness._reroute_notification`` handled a re-route whose
fallback was unusable (``fallback is None or fallback == target`` — the
sender's whole parent ring died and the repair surgery had nowhere to point
the orphaned subtree) by silently dropping the operations *after* having
un-marked them from the target ring's seen-set.  The members those
operations carried vanished without a counter, a trace line, or any way to
recover them.

The fix dead-letters such notifications: ``harness.notify_dead_lettered``
accounts the event, the entry is stashed, and the next repair surgery that
gives the sender a live parent (observed via the kernel's coverage epoch)
re-injects the operations (``harness.notify_reinjected``).  Entries whose
fallback is still unusable stay stashed — accounted, never dropped.

Layout:

* deterministic tests drive a 2×2 hierarchy into the exact orphaned-subtree
  state (both top-ring entities excluded) and exercise the branch, the
  stash-keeps semantics, and the repair-then-reinject path;
* a hypothesis test runs whole scripted scenarios under crash + loss races
  (every ring keeps a survivor, so every re-route must eventually land) and
  asserts the no-drop invariant: the converged global membership is exactly
  the script's expectation and nothing was abandoned.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.harness import HarnessConfig, ScenarioHarness, _PendingNotification


def _orphan_harness():
    """A 2×2 harness whose whole top ring has been repaired away.

    Every bottom ring's parent slot then dangles at the last-excluded top
    entity: the re-attachment surgery of the first exclusion points the
    orphans at the surviving top node, and the second exclusion has no
    survivor left to point them at.  Returns (harness, sender, target)
    where ``sender`` is a bottom-ring leader and ``target`` the dangling
    parent — the exact state whose re-route used to silently drop ops.
    """
    harness = ScenarioHarness(HarnessConfig(ring_size=2, height=2, seed=1))
    kernel = harness.kernel
    top = harness.hierarchy.topmost_ring()
    first, second = list(top.members)
    kernel.fail_entity(first)
    kernel.detect_and_repair(first)
    kernel.fail_entity(second)
    kernel.detect_and_repair(second)
    assert not harness.hierarchy.has_node(second)
    sender = next(
        ring.leader
        for ring in harness.hierarchy.rings.values()
        if ring.tier == harness.hierarchy.bottom_tier()
    )
    assert kernel.entities[sender].parent == second
    return harness, sender, second


def _entry(harness, sender, target, guid="dl-member-0"):
    kernel = harness.kernel
    op = kernel.make_join_op(sender, guid)
    ring_id = harness.hierarchy.ring_of_node.get(target)
    # The target was already excised from the hierarchy; the entry recorded
    # its ring at send time, as the dispatch does.
    ring_id = ring_id or harness.hierarchy.topmost_ring().ring_id
    kernel.ring_seen[ring_id].add(op.sequence)
    return _PendingNotification(
        sender=sender, target=target, operations=(op,), target_ring_id=ring_id
    )


def test_unusable_fallback_dead_letters_instead_of_dropping():
    harness, sender, target = _orphan_harness()
    entry = _entry(harness, sender, target)
    harness._reroute_notification(entry)

    assert harness.counter_values().get("harness.notify_dead_lettered", 0) == 1
    assert len(harness.dead_letters) == 1
    assert harness.dead_letters[0].operations == entry.operations
    # The ops were un-marked from the seen-set (they never arrived) AND
    # stashed — the old behaviour un-marked then dropped, losing them.
    seen = harness.kernel.ring_seen[entry.target_ring_id]
    assert entry.operations[0].sequence not in seen


def test_dead_letters_stay_stashed_while_fallback_unusable():
    harness, sender, target = _orphan_harness()
    harness._reroute_notification(_entry(harness, sender, target))

    # Same coverage epoch: retry is a no-op.
    assert harness._retry_dead_letters() is False
    assert len(harness.dead_letters) == 1
    # Epoch moved but the parent slot still dangles at the excised target:
    # the entry is re-examined, found unusable, and kept — never dropped.
    harness.kernel.invalidate_coverage()
    assert harness._retry_dead_letters() is False
    assert len(harness.dead_letters) == 1
    assert harness.counter_values().get("harness.notify_reinjected", 0) == 0


def test_repair_reinjects_dead_letters():
    harness, sender, target = _orphan_harness()
    kernel = harness.kernel
    entry = _entry(harness, sender, target)
    harness._reroute_notification(entry)
    assert len(harness.dead_letters) == 1

    # A later repair gives the sender a live parent (here: the other bottom
    # ring's leader stands in for a re-attached subtree root) and bumps the
    # coverage epoch — exactly what real repair surgery does.
    bottom = harness.hierarchy.bottom_tier()
    new_parent = next(
        ring.leader
        for ring in harness.hierarchy.rings.values()
        if ring.tier == bottom and sender not in ring.members
    )
    kernel.entities[sender].set_parent(new_parent)
    kernel.invalidate_coverage()

    assert harness._retry_dead_letters() is True
    assert harness.dead_letters == []
    assert harness.counter_values().get("harness.notify_reinjected", 0) == 1
    # Re-injection went back through forward_notification: the ops are
    # marked seen at the new parent's ring and the transport carries them.
    new_ring = harness.hierarchy.ring_of(new_parent).ring_id
    assert entry.operations[0].sequence in kernel.ring_seen[new_ring]
    harness.engine.run()
    assert harness.counter_values().get("harness.notifications_delivered", 0) >= 1


def test_round_retry_hook_reinjects_after_real_repair():
    """The in-round retry hook (not just the quiescence sweep) re-offers."""
    harness, sender, target = _orphan_harness()
    kernel = harness.kernel
    harness._reroute_notification(_entry(harness, sender, target))

    bottom = harness.hierarchy.bottom_tier()
    new_parent = next(
        ring.leader
        for ring in harness.hierarchy.rings.values()
        if ring.tier == bottom and sender not in ring.members
    )
    kernel.entities[sender].set_parent(new_parent)
    kernel.invalidate_coverage()
    # Queue real work at the sender so the round actually executes, then a
    # round on the sender's ring runs the retry hook.
    kernel.capture(sender, kernel.make_join_op(sender, "dl-extra"), 0.0)
    harness._run_ring_round(harness.hierarchy.ring_of(sender).ring_id)
    assert harness.dead_letters == []
    assert harness.counter_values().get("harness.notify_reinjected", 0) == 1


def test_adjacent_failures_salvage_to_surviving_detector():
    """Two failures adjacent in ring order must not orphan the second's MQ.

    The probe round repairs failures in visiting order; the detector for a
    failed member used to be its ring-order predecessor — which, when two
    failures sit next to each other, is the *other* failed member, so the
    salvage found a dead heir and orphaned the queued operations (dropping
    the member they carried).  The detector is now the last surviving node
    the token visited.
    """
    harness = ScenarioHarness(
        HarnessConfig(ring_size=3, height=3, seed=0, loss=0.0, latency_std=0.0)
    )
    # prop's join notification lands in L2-0001-0000's MQ (the parent AG of
    # ring-T1-0003) at t=4; the AG crashes at t=5 with the op undrained, and
    # its ring-order predecessor L2-0001-0002 is already dead — the t=6
    # probe round must salvage the queue to the surviving L2-0001-0001.
    harness.schedule_join(1.0, "L1-0003-0000", guid="prop-adjacent")
    harness.schedule_crash(1.0, "L2-0001-0002")
    harness.schedule_crash(5.0, "L2-0001-0000")
    harness.run()
    counters = harness.counter_values()
    assert counters.get("repairs.mq_orphaned", 0) == 0
    assert counters.get("repairs.mq_salvaged", 0) >= 1
    assert harness.global_guids() == ["prop-adjacent"]


# ---------------------------------------------------------------------------
# property: no operation is ever dropped under crash + re-route races
# ---------------------------------------------------------------------------


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(data=st.data())
def test_no_member_dropped_under_crash_reroute_races(data):
    """Scripted churn + partial-ring crashes + loss: the converged global
    view is *exactly* the script's surviving membership.

    Crashes hit only non-AP entities and every ring keeps at least one
    survivor, so each scripted operation has a live capture point and every
    re-route has a reachable fallback — any missing member can only mean an
    operation was dropped in flight.  Conservation of the dead-letter
    accounting is asserted alongside.
    """
    seed = data.draw(st.integers(min_value=0, max_value=10_000), label="seed")
    loss = data.draw(st.sampled_from([0.0, 0.2]), label="loss")
    harness = ScenarioHarness(
        HarnessConfig(ring_size=3, height=3, seed=seed, loss=loss, latency_std=0.0)
    )
    hierarchy = harness.hierarchy
    bottom = hierarchy.bottom_tier()
    aps = sorted(
        node.value
        for ring in hierarchy.rings.values()
        if ring.tier == bottom
        for node in ring.members
    )

    # Script: joins (tracked), some leaves of joined members.
    joins = data.draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0.5, max_value=40.0),
                st.sampled_from(aps),
            ),
            min_size=4,
            max_size=12,
        ),
        label="joins",
    )
    alive = {}
    for index, (when, ap) in enumerate(joins):
        guid = f"prop-{index:03d}"
        harness.schedule_join(when, ap, guid=guid)
        alive[guid] = when
    leave_count = data.draw(st.integers(min_value=0, max_value=len(joins) // 2))
    for guid in sorted(alive)[:leave_count]:
        harness.schedule_leave(alive[guid] + 45.0, guid)
        del alive[guid]

    # Crashes: non-AP entities only, at least one survivor per ring.
    for ring in hierarchy.rings.values():
        if ring.tier == bottom:
            continue
        members = list(ring.members)
        victims = data.draw(
            st.lists(st.sampled_from(members), unique=True, max_size=len(members) - 1),
            label=f"crash:{ring.ring_id}",
        )
        for victim in victims:
            when = data.draw(
                st.floats(min_value=1.0, max_value=60.0),
                label=f"crash_at:{victim}",
            )
            harness.schedule_crash(when, str(victim.value))

    harness.run()
    counters = harness.counter_values()

    # Nothing abandoned, and dead-letter accounting conserves entries:
    # every dead-lettered notification was either re-injected or is still
    # stashed — never silently gone.
    assert counters.get("harness.notify_abandoned", 0) == 0
    assert counters.get("harness.notify_dead_lettered", 0) == counters.get(
        "harness.notify_reinjected", 0
    ) + len(harness.dead_letters)
    assert harness.dead_letters == []

    assert harness.global_guids() == sorted(alive)
