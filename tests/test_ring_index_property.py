"""Equivalence of the array-backed ring index with the naive list semantics.

PR 4 replaced :class:`repro.core.ring.LogicalRing`'s per-call ``list.index``
scans with a maintained position index (plus a mutation ``version`` the
kernel's caches key on).  These property tests drive the optimised ring and a
deliberately naive reference model through identical random mutation
sequences and require every observable — order, successor/predecessor,
``members_from``, containment, leader — to match exactly.  The golden-trace
suite (``tests/test_golden_traces.py``) separately pins that full harness
runs over the optimised path stay byte-identical to the pre-optimisation
dumps committed under ``tests/golden/``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.identifiers import NodeId
from repro.core.ring import LogicalRing, RingError


class NaiveRing:
    """Reference implementation: the seed's plain-list semantics."""

    def __init__(self, members):
        self.members = list(members)
        self.leader = self.members[0] if self.members else None

    def _index_of(self, node):
        return self.members.index(node)

    def successor(self, node):
        idx = self._index_of(node)
        return self.members[(idx + 1) % len(self.members)]

    def predecessor(self, node):
        idx = self._index_of(node)
        return self.members[(idx - 1) % len(self.members)]

    def members_from(self, start):
        idx = self._index_of(start)
        return self.members[idx:] + self.members[:idx]

    def insert_member(self, node, after=None):
        if after is None:
            self.members.append(node)
        else:
            self.members.insert(self._index_of(after) + 1, node)
        if self.leader is None:
            self.leader = node

    def remove_member(self, node):
        was_leader = self.leader == node
        del self.members[self._index_of(node)]
        if was_leader:
            self.leader = None
        return was_leader

    def elect_leader(self):
        self.leader = min(self.members, key=lambda n: n.value) if self.members else None
        return self.leader


def _node(i: int) -> NodeId:
    return NodeId(f"n-{i:04d}")


@st.composite
def mutation_scripts(draw):
    """An initial ring plus a sequence of insert/remove/elect mutations."""
    initial = draw(st.integers(min_value=2, max_value=8))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(("insert_end", "insert_after", "remove", "elect")),
                st.integers(min_value=0, max_value=10_000),
            ),
            min_size=0,
            max_size=24,
        )
    )
    return initial, ops


@settings(max_examples=200, deadline=None)
@given(script=mutation_scripts())
def test_indexed_ring_matches_naive_semantics(script):
    initial, ops = script
    members = [_node(i) for i in range(initial)]
    ring = LogicalRing(ring_id="prop", tier=1, members=list(members))
    naive = NaiveRing(members)
    next_id = initial

    for action, pick in ops:
        if action == "insert_end":
            node = _node(next_id)
            next_id += 1
            ring.insert_member(node)
            naive.insert_member(node)
        elif action == "insert_after":
            if not ring.members:
                continue
            anchor = ring.members[pick % len(ring.members)]
            node = _node(next_id)
            next_id += 1
            ring.insert_member(node, after=anchor)
            naive.insert_member(node, after=anchor)
        elif action == "remove":
            if len(ring.members) <= 1:
                continue
            victim = ring.members[pick % len(ring.members)]
            assert ring.remove_member(victim) == naive.remove_member(victim)
        else:  # elect
            if not ring.members:
                continue
            assert ring.elect_leader() == naive.elect_leader()

        # Full observable equivalence after every mutation.
        assert ring.members == naive.members
        ring.validate()  # includes the index-sync invariant
        for node in ring.members:
            assert ring.successor(node) == naive.successor(node)
            assert ring.predecessor(node) == naive.predecessor(node)
            assert node in ring
        if ring.members:
            start = ring.members[pick % len(ring.members)]
            assert ring.members_from(start) == naive.members_from(start)
        assert _node(99_999) not in ring


def test_unknown_member_still_raises_ring_error():
    ring = LogicalRing(ring_id="r", tier=1, members=[_node(0), _node(1)])
    with pytest.raises(RingError):
        ring.successor(_node(7))
    with pytest.raises(RingError):
        ring.members_from(_node(7))
    with pytest.raises(RingError):
        ring.remove_member(_node(7))


def test_duplicate_members_rejected_at_construction():
    with pytest.raises(RingError):
        LogicalRing(ring_id="r", tier=1, members=[_node(0), _node(0)])


def test_version_bumps_on_every_shape_change():
    ring = LogicalRing(ring_id="r", tier=1, members=[_node(0), _node(1), _node(2)])
    v0 = ring.version
    ring.insert_member(_node(3))
    v1 = ring.version
    assert v1 > v0
    ring.insert_member(_node(4), after=_node(0))
    v2 = ring.version
    assert v2 > v1
    ring.remove_member(_node(0))
    assert ring.version > v2


def test_contains_accepts_foreign_probe_types():
    ring = LogicalRing(ring_id="r", tier=1, members=[_node(0)])
    assert "n-0000" not in ring  # plain string is not a NodeId
    assert ["unhashable"] not in ring  # falls back to list semantics
