"""Parallel-vs-sequential equivalence of the scenario-matrix runner.

The contract under test (``repro.workloads.parallel``): sharding matrix cells
across a ``multiprocessing`` pool changes *nothing* about the results — every
``RunRecord`` (converged state, cost totals, counters) is bit-identical to the
sequential sweep, lossless and lossy alike.  This only holds because no cell
draws from process-global mutable state; the regression tests at the bottom
pin the specific leak the pool runner surfaced (the module-level token-id
counter in ``repro.core.token``).
"""

from __future__ import annotations

import multiprocessing

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.identifiers import GroupId, NodeId, _Identifier
from repro.core.token import Token
from repro.sim.harness import HarnessConfig, ScenarioHarness
from repro.workloads.matrix import MatrixCell, ScenarioMatrix, run_matrix_cell
from repro.workloads.parallel import (
    CellFailure,
    record_fingerprint,
    result_fingerprint,
    run_cells,
    run_matrix,
)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

#: Small shapes (r**h) that keep a pool-per-example affordable.
SMALL_SIZES = (9, 16, 25)


def _fingerprints(report):
    return [result_fingerprint(r) for r in report.results]


# ---------------------------------------------------------------------------
# hypothesis-driven equivalence: jobs=1 == jobs=4, lossless and 5% loss
# ---------------------------------------------------------------------------


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scenario=st.sampled_from(("churn", "handoff_storm", "partition_merge")),
    size=st.sampled_from(SMALL_SIZES),
    loss=st.sampled_from((0.0, 0.05)),
    seed=st.integers(min_value=0, max_value=10_000),
    events=st.integers(min_value=4, max_value=10),
)
def test_parallel_matrix_bit_identical_to_sequential(scenario, size, loss, seed, events):
    cells = [
        MatrixCell(scenario=scenario, num_proxies=size, loss=loss, seed=seed),
        MatrixCell(scenario=scenario, num_proxies=size, loss=loss, seed=seed + 1),
    ]
    sequential = run_cells(cells, events=events, jobs=1)
    parallel = run_cells(cells, events=events, jobs=4)
    assert sequential.ok and parallel.ok
    assert parallel.jobs > 1
    assert _fingerprints(sequential) == _fingerprints(parallel)


def test_full_small_matrix_equivalence_lossless_and_lossy():
    """A whole ScenarioMatrix (both loss points of the satellite spec)."""
    matrix = ScenarioMatrix(
        sizes=(16,),
        losses=(0.0, 0.05),
        scenarios=("churn", "mobility_trace"),
        events_per_cell=8,
    )
    sequential = run_matrix(matrix, jobs=1)
    parallel = run_matrix(matrix, jobs=4)
    assert sequential.ok and parallel.ok
    assert len(sequential.results) == len(matrix.cells())
    assert _fingerprints(sequential) == _fingerprints(parallel)


def test_ablation_cells_equivalent_across_pool():
    cells = [
        MatrixCell(scenario="churn", num_proxies=16, loss=loss, seed=3, protocol=protocol)
        for protocol in ("rgb", "flat_ring", "gossip", "tree")
        for loss in (0.0, 0.05)
    ]
    sequential = run_cells(cells, events=6, jobs=1, ablation=True)
    parallel = run_cells(cells, events=6, jobs=3, ablation=True)
    assert sequential.ok and parallel.ok
    assert _fingerprints(sequential) == _fingerprints(parallel)


# ---------------------------------------------------------------------------
# ordering, failure isolation, fingerprints
# ---------------------------------------------------------------------------


def test_results_come_back_in_input_order():
    cells = [
        MatrixCell(scenario="churn", num_proxies=16, loss=0.0, seed=s) for s in range(5)
    ]
    report = run_cells(cells, events=4, jobs=4)
    assert report.ok
    assert [r.cell for r in report.results] == cells


def test_failure_is_isolated_per_cell(monkeypatch):
    import repro.workloads.parallel as parallel_mod

    real = parallel_mod.run_matrix_cell

    def explode(cell, events=24, snapshot=None):
        if cell.seed == 1:
            raise RuntimeError("boom in worker")
        return real(cell, events=events, snapshot=snapshot)

    monkeypatch.setattr(parallel_mod, "run_matrix_cell", explode)
    cells = [
        MatrixCell(scenario="churn", num_proxies=16, loss=0.0, seed=s) for s in range(3)
    ]
    report = run_cells(cells, events=4, jobs=1)
    assert len(report.results) == 2
    assert len(report.failures) == 1
    failure = report.failures[0]
    assert isinstance(failure, CellFailure)
    assert failure.cell.seed == 1
    assert "boom in worker" in failure.error
    assert "RuntimeError" in failure.traceback
    with pytest.raises(RuntimeError, match="boom in worker"):
        report.raise_if_failed()


@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
def test_failure_is_isolated_per_cell_in_pool(monkeypatch):
    """Same isolation through a real fork pool (workers inherit the patch)."""
    import repro.workloads.parallel as parallel_mod

    real = parallel_mod.run_matrix_cell

    def explode(cell, events=24, snapshot=None):
        if cell.seed == 1:
            raise RuntimeError("boom in worker")
        return real(cell, events=events, snapshot=snapshot)

    monkeypatch.setattr(parallel_mod, "run_matrix_cell", explode)
    cells = [
        MatrixCell(scenario="churn", num_proxies=16, loss=0.0, seed=s) for s in range(3)
    ]
    report = run_cells(cells, events=4, jobs=3)
    assert len(report.results) == 2
    assert [f.cell.seed for f in report.failures] == [1]


def test_record_fingerprint_drops_only_wall_clock_fields():
    cell = MatrixCell(scenario="churn", num_proxies=16, loss=0.0, seed=0)
    record = run_matrix_cell(cell, events=4).record
    fingerprint = record_fingerprint(record)
    assert "wall_seconds" in record.values
    assert "wall_seconds" not in fingerprint["values"]
    assert "events_per_second" not in fingerprint["values"]
    # Everything else survives.
    kept = set(fingerprint["values"])
    assert kept == {
        k
        for k in record.values
        if k not in ("wall_seconds", "build_seconds", "events_per_second")
    }
    assert fingerprint["counters"] == dict(sorted(record.counters.items()))


# ---------------------------------------------------------------------------
# worker-unsafe-state regressions (the leaks the pool runner surfaced)
# ---------------------------------------------------------------------------


def test_token_default_id_is_not_process_global():
    """``Token()`` must not consume module-level mutable state.

    The seed's module-level ``itertools.count`` meant a forked worker
    inherited the parent's counter position, so identical cells produced
    different token ids (visible in traces) depending on pool scheduling.
    """
    token_a = Token(group=GroupId("g"), holder=NodeId("a"), ring_id="r")
    token_b = Token(group=GroupId("g"), holder=NodeId("a"), ring_id="r")
    assert token_a.token_id == 0
    assert token_b.token_id == 0
    assert token_a.fresh(NodeId("b")).token_id == 0
    assert token_a.fresh(NodeId("b"), token_id=7).token_id == 7


def _traced_dump(seed: int) -> str:
    harness = ScenarioHarness(
        HarnessConfig(
            ring_size=3, height=2, seed=seed, loss=0.0,
            latency_std=0.0, trace_enabled=True,
        )
    )
    aps = harness.access_proxies()
    harness.schedule_join(1.0, aps[0], guid="m-0")
    harness.schedule_join(2.0, aps[1], guid="m-1")
    harness.run()
    return harness.trace.canonical_dump()


def test_same_cell_trace_is_identical_despite_interleaved_work():
    """Two same-seeded runs in one process dump byte-identical traces even
    when unrelated protocol work runs in between (the global token counter
    would have shifted the second run's token ids)."""
    first = _traced_dump(seed=5)
    run_matrix_cell(MatrixCell(scenario="churn", num_proxies=9, loss=0.0, seed=0), events=4)
    second = _traced_dump(seed=5)
    assert first == second


def _intern_population() -> int:
    tables = [_Identifier._intern]
    stack = list(_Identifier.__subclasses__())
    while stack:
        cls = stack.pop()
        tables.append(cls._intern)
        stack.extend(cls.__subclasses__())
    return sum(len(t) for t in tables)


def test_sweeps_release_interned_identifiers():
    """Matrix/worker sweeps must not pin interned node/GUID identifiers.

    Before the per-cell ``clear_intern_tables()`` reset, every cell of a
    long sweep left its whole topology's identifiers interned for the life
    of the process (or pool worker) — unbounded growth across a matrix run.
    """
    from repro.core.identifiers import clear_intern_tables

    clear_intern_tables()
    baseline = _intern_population()

    matrix = ScenarioMatrix(
        sizes=(16,), losses=(0.0,), scenarios=("churn",), events_per_cell=4
    )
    matrix.run()
    assert _intern_population() == baseline

    # The pool-worker path (jobs=1 runs the worker in-process, so the same
    # reset is observable here; forked workers get the identical finally).
    report = run_cells(
        [MatrixCell(scenario="churn", num_proxies=16, loss=0.0, seed=0)],
        events=4,
        jobs=1,
    )
    assert report.ok
    assert _intern_population() == baseline


def test_same_seed_identical_and_different_seeds_independent_across_processes():
    """Same-seeded cells agree across workers; differently seeded cells do
    not correlate (their seeded workloads diverge)."""
    same = [
        MatrixCell(scenario="churn", num_proxies=16, loss=0.0, seed=42),
        MatrixCell(scenario="churn", num_proxies=16, loss=0.0, seed=42),
    ]
    report = run_cells(same, events=6, jobs=2)
    assert report.ok
    fingerprints = _fingerprints(report)
    assert fingerprints[0]["record"] == fingerprints[1]["record"]

    different = [
        MatrixCell(scenario="churn", num_proxies=16, loss=0.0, seed=1),
        MatrixCell(scenario="churn", num_proxies=16, loss=0.0, seed=2),
    ]
    report = run_cells(different, events=6, jobs=2)
    assert report.ok
    fingerprints = _fingerprints(report)
    assert fingerprints[0]["record"] != fingerprints[1]["record"]
