"""Golden-trace conformance: canonical event traces of seeded scenarios.

Three small seeded scenarios run through the event-driven harness with
deterministic per-link latency (``latency_std=0``); their
:meth:`repro.sim.trace.TraceRecorder.canonical_dump` output must be

* **byte-stable across runs** — two fresh executions in the same process
  produce identical dumps, and
* **byte-identical to the golden files** committed under ``tests/golden/``.

Any change to event ordering, round scheduling, notification routing or the
trace format shows up as a diff against the goldens, which is exactly the
conformance signal future protocol PRs need.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/test_golden_traces.py --regen
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.sim.harness import HarnessConfig, ScenarioHarness
from repro.workloads.handoffs import HandoffStorm

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def _harness(**overrides) -> ScenarioHarness:
    defaults = dict(
        latency_std=0.0,  # deterministic link delays: no RNG in the transport
        loss=0.0,
        trace_enabled=True,
    )
    defaults.update(overrides)
    return ScenarioHarness(HarnessConfig(**defaults))


def scenario_join_leave_handoff() -> str:
    """Scripted membership traffic over a 9-proxy hierarchy."""
    harness = _harness(ring_size=3, height=2, seed=101)
    aps = harness.access_proxies()
    harness.schedule_join(1.0, aps[0], guid="alpha")
    harness.schedule_join(2.0, aps[4], guid="beta")
    harness.schedule_join(3.0, aps[8], guid="gamma")
    harness.schedule_handoff(40.0, "alpha", aps[1])
    harness.schedule_leave(60.0, "beta")
    harness.run()
    return harness.trace.canonical_dump()


def scenario_crash_repair() -> str:
    """An access-proxy crash discovered and repaired mid-scenario."""
    harness = _harness(ring_size=4, height=2, seed=202)
    aps = harness.access_proxies()
    for index in range(4):
        harness.schedule_join(1.0 + index, aps[index], guid=f"m-{index}")
    harness.schedule_crash(30.0, aps[0])
    harness.schedule_join(60.0, aps[5], guid="late")
    harness.run()
    return harness.trace.canonical_dump()


def scenario_handoff_storm() -> str:
    """A seeded handoff storm over an attached population."""
    harness = _harness(ring_size=4, height=2, seed=303)
    aps = harness.access_proxies()
    attachment = {f"hs-{i}": aps[i] for i in range(6)}
    for index, (member, ap) in enumerate(attachment.items()):
        harness.schedule_join(1.0 + index, ap, guid=member)
    storm = HandoffStorm(
        attachment=attachment,
        neighbor_map=harness.ring_neighbor_map(),
        handoffs=10,
        locality=0.8,
        duration=40.0,
        seed=303,
    )
    for event in storm.generate():
        harness.schedule_handoff(30.0 + event.time, event.member, event.to_ap)
    harness.run()
    return harness.trace.canonical_dump()


SCENARIOS = {
    "join_leave_handoff": scenario_join_leave_handoff,
    "crash_repair": scenario_crash_repair,
    "handoff_storm": scenario_handoff_storm,
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_trace_is_byte_stable_across_runs(name):
    first = SCENARIOS[name]()
    second = SCENARIOS[name]()
    assert first == second
    assert first.endswith("\n") and first.count("\n") > 10


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_trace_matches_golden_file(name):
    golden_path = GOLDEN_DIR / f"{name}.trace"
    assert golden_path.exists(), (
        f"missing golden file {golden_path}; regenerate with "
        "`PYTHONPATH=src python tests/test_golden_traces.py --regen`"
    )
    assert SCENARIOS[name]() == golden_path.read_text()


def test_canonical_dump_format():
    dump = scenario_join_leave_handoff()
    line = dump.splitlines()[0]
    time_field, category, actor, description, details = line.split("|")
    float(time_field)  # fixed six-decimal timestamp
    assert category and actor and description
    # Six decimals exactly: the format may not drift.
    assert len(time_field.split(".")[1]) == 6
    assert details == "" or "=" in details


def _regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, scenario in sorted(SCENARIOS.items()):
        path = GOLDEN_DIR / f"{name}.trace"
        path.write_text(scenario())
        print(f"wrote {path} ({path.stat().st_size} bytes)")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
