"""Unit tests for the network graph, latency models and message transport."""

from __future__ import annotations

import pytest

from repro.sim.network import (
    INTER_AS,
    INTRA_AS,
    WIRELESS_EDGE,
    LatencyModel,
    Network,
    NetworkNode,
    NodeState,
)
from repro.sim.rng import RandomStreams
from repro.sim.transport import Transport, TransportError


# ---------------------------------------------------------------------------
# LatencyModel
# ---------------------------------------------------------------------------


class TestLatencyModel:
    def test_deterministic_when_std_zero(self, streams):
        model = LatencyModel(mean=5.0, std=0.0)
        rng = streams.stream("x")
        assert model.sample_delay(rng) == 5.0

    def test_delay_respects_minimum(self, streams):
        model = LatencyModel(mean=0.5, std=10.0, min_delay=0.2)
        rng = streams.stream("x")
        for _ in range(50):
            assert model.sample_delay(rng) >= 0.2

    def test_zero_loss_never_drops(self, streams):
        model = LatencyModel(mean=1.0, loss=0.0)
        rng = streams.stream("x")
        assert not any(model.sample_loss(rng) for _ in range(100))

    def test_high_loss_drops_often(self, streams):
        model = LatencyModel(mean=1.0, loss=0.9)
        rng = streams.stream("x")
        drops = sum(model.sample_loss(rng) for _ in range(200))
        assert drops > 120

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mean": 0.0},
            {"mean": 1.0, "std": -1.0},
            {"mean": 1.0, "loss": 1.0},
            {"mean": 1.0, "min_delay": 0.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            LatencyModel(**kwargs)

    def test_tier_presets_exist(self):
        assert WIRELESS_EDGE.mean > INTRA_AS.mean
        assert INTER_AS.mean > INTRA_AS.mean


# ---------------------------------------------------------------------------
# Network
# ---------------------------------------------------------------------------


class TestNetwork:
    def test_add_and_lookup_nodes(self, small_network):
        assert len(small_network) == 5
        assert small_network.node("a").kind == "AP"
        assert small_network.has_node("a")
        assert not small_network.has_node("zzz")

    def test_duplicate_node_rejected(self, small_network):
        with pytest.raises(ValueError):
            small_network.add_node(NetworkNode(node_id="a", kind="AP"))

    def test_link_requires_known_nodes(self, small_network):
        with pytest.raises(KeyError):
            small_network.add_link("a", "nope", INTRA_AS)

    def test_self_link_rejected(self, small_network):
        with pytest.raises(ValueError):
            small_network.add_link("a", "a", INTRA_AS)

    def test_duplicate_link_rejected(self, small_network):
        with pytest.raises(ValueError):
            small_network.add_link("a", "b", INTRA_AS)

    def test_neighbors(self, small_network):
        assert sorted(small_network.neighbors("a")) == ["b", "e"]

    def test_kind_filter(self, small_network):
        assert len(small_network.nodes("AP")) == 5
        assert small_network.nodes("BR") == []

    def test_shortest_path(self, small_network):
        path = small_network.path("a", "c")
        assert path == ["a", "b", "c"]

    def test_path_prefers_shortcut(self, small_network):
        assert small_network.path("a", "e") == ["a", "e"]

    def test_path_avoids_failed_intermediate(self, small_network):
        small_network.set_node_state("b", NodeState.FAILED)
        path = small_network.path("a", "c")
        assert path == ["a", "e", "d", "c"]

    def test_path_avoids_down_link(self, small_network):
        small_network.set_link_state("a", "b", up=False)
        assert small_network.path("a", "b") == ["a", "e", "d", "c", "b"]

    def test_no_path_when_destination_isolated(self, small_network):
        small_network.set_link_state("a", "b", up=False)
        small_network.set_link_state("b", "c", up=False)
        assert small_network.path("a", "b") is None

    def test_path_to_self(self, small_network):
        assert small_network.path("c", "c") == ["c"]

    def test_path_latency_positive(self, small_network, streams):
        path = small_network.path("a", "d")
        assert small_network.path_latency(path, streams.stream("lat")) > 0.0

    def test_connected_components_when_partitioned(self, small_network):
        small_network.set_node_state("b", NodeState.FAILED)
        small_network.set_node_state("e", NodeState.FAILED)
        components = small_network.connected_components()
        assert sorted(len(c) for c in components) == [1, 2]

    def test_operational_nodes_excludes_failed(self, small_network):
        small_network.set_node_state("a", NodeState.FAILED)
        assert len(small_network.operational_nodes()) == 4

    def test_link_other_endpoint(self, small_network):
        link = small_network.link("a", "b")
        assert link.other("a") == "b"
        assert link.other("b") == "a"
        with pytest.raises(KeyError):
            link.other("zzz")


# ---------------------------------------------------------------------------
# Transport
# ---------------------------------------------------------------------------


class TestTransport:
    def _register_collector(self, transport, node_id, inbox):
        transport.register(node_id, lambda msg: inbox.append(msg))

    def test_basic_delivery(self, engine, transport):
        inbox = []
        self._register_collector(transport, "c", inbox)
        receipt = transport.send("a", "c", "hello", {"x": 1})
        assert receipt.accepted
        engine.run()
        assert len(inbox) == 1
        assert inbox[0].payload["x"] == 1
        assert transport.delivered_count() == 1

    def test_register_unknown_node_rejected(self, transport):
        with pytest.raises(TransportError):
            transport.register("nope", lambda msg: None)

    def test_delivery_takes_time(self, engine, transport):
        inbox = []
        self._register_collector(transport, "d", inbox)
        transport.send("a", "d", "ping")
        engine.run()
        assert engine.now > 0.0

    def test_local_delivery_is_immediate(self, engine, transport):
        inbox = []
        self._register_collector(transport, "a", inbox)
        transport.send("a", "a", "self")
        engine.run()
        assert engine.now == 0.0
        assert len(inbox) == 1

    def test_send_from_failed_source_dropped(self, engine, transport, small_network):
        inbox = []
        self._register_collector(transport, "b", inbox)
        small_network.set_node_state("a", NodeState.FAILED)
        receipt = transport.send("a", "b", "msg")
        assert not receipt.accepted
        assert receipt.reason == "source-not-operational"
        engine.run()
        assert inbox == []

    def test_send_to_failed_destination_dropped(self, engine, transport, small_network):
        small_network.set_node_state("c", NodeState.FAILED)
        receipt = transport.send("a", "c", "msg")
        assert not receipt.accepted
        assert transport.dropped_count() == 1

    def test_destination_fails_in_flight(self, engine, transport, small_network):
        inbox = []
        self._register_collector(transport, "c", inbox)
        transport.send("a", "c", "msg")
        small_network.set_node_state("c", NodeState.FAILED)
        engine.run()
        assert inbox == []
        assert transport.dropped_count() == 1

    def test_no_handler_counts_as_drop(self, engine, transport):
        transport.send("a", "b", "msg")
        engine.run()
        assert transport.dropped_count() == 1

    def test_partition_filter_blocks_pairs(self, engine, transport):
        inbox = []
        self._register_collector(transport, "b", inbox)
        transport.set_partition_filter(lambda src, dst: {src, dst} == {"a", "b"})
        receipt = transport.send("a", "b", "msg")
        assert not receipt.accepted and receipt.reason == "partitioned"
        transport.set_partition_filter(None)
        transport.send("a", "b", "msg")
        engine.run()
        assert len(inbox) == 1

    def test_logical_hop_counting(self, engine, transport):
        inbox = []
        self._register_collector(transport, "b", inbox)
        self._register_collector(transport, "c", inbox)
        transport.send("a", "b", "one")
        transport.send("a", "c", "two", logical_hop=False)
        engine.run()
        assert transport.logical_hop_count() == 1
        assert transport.sent_count() == 2
        assert transport.sent_count("one") == 1

    def test_lossy_path_retries_and_delivers(self, engine, streams):
        network = Network()
        network.add_node(NetworkNode(node_id="x", kind="AP"))
        network.add_node(NetworkNode(node_id="y", kind="AP"))
        network.add_link("x", "y", LatencyModel(mean=1.0, loss=0.4))
        lossy_transport = Transport(engine, network, streams, default_retries=10)
        inbox = []
        lossy_transport.register("y", lambda msg: inbox.append(msg))
        for _ in range(20):
            lossy_transport.send("x", "y", "msg")
        engine.run()
        assert len(inbox) == 20  # retries mask the losses
        assert lossy_transport.metrics.counter("transport.retransmissions").value > 0

    def test_unregister(self, engine, transport):
        inbox = []
        self._register_collector(transport, "b", inbox)
        assert transport.is_registered("b")
        transport.unregister("b")
        transport.send("a", "b", "msg")
        engine.run()
        assert inbox == []
