"""Integration tests: end-to-end scenarios spanning all subsystems."""

from __future__ import annotations

import pytest

from repro.core.config import ProtocolConfig, SimulationConfig
from repro.core.protocol import _decode_member, _decode_op, _encode_member, _encode_op
from repro.core.query import MembershipScheme
from repro.core.simulation import RGBSimulation
from repro.workloads.scenarios import run_churn_scenario, run_conferencing_scenario


class TestPackagedScenarios:
    def test_churn_scenario_tracks_population(self):
        result = run_churn_scenario(num_aps=9, ring_size=3, horizon=120.0, join_rate=0.4, seed=2)
        assert result.name == "churn"
        assert result.final_membership == result.details["expected_membership"]
        assert result.events_processed == result.details["workload"]["total"]

    def test_churn_scenario_deterministic(self):
        a = run_churn_scenario(num_aps=9, ring_size=3, horizon=80.0, seed=5)
        b = run_churn_scenario(num_aps=9, ring_size=3, horizon=80.0, seed=5)
        assert a.final_membership == b.final_membership
        assert a.events_processed == b.events_processed

    def test_conferencing_scenario_keeps_roster_intact(self):
        result = run_conferencing_scenario(
            num_aps=12, ring_size=4, participants=15, handoffs=25, locality=0.9, seed=4
        )
        assert result.final_membership == 15
        stats = result.details["handoff_stats"]
        assert stats["handoffs"] == 25
        # High-locality storms mostly hit the neighbour-list fast path.
        assert stats["fast_path_ratio"] > 0.5
        assert set(result.details["query_hops"]) == {s.value for s in MembershipScheme}


class TestEngineEquivalence:
    """The structural and message-passing engines agree on membership outcomes."""

    def _run(self, mode: str):
        sim = RGBSimulation(
            SimulationConfig(
                num_aps=9,
                ring_size=3,
                hosts_per_ap=0,
                seed=6,
                engine_mode=mode,
                protocol=ProtocolConfig(aggregation_delay=1.0),
            )
        ).build()
        aps = sim.access_proxies()
        sim.join_member(ap_id=aps[0], guid="alice")
        sim.join_member(ap_id=aps[4], guid="bob")
        sim.join_member(ap_id=aps[8], guid="carol")
        sim.run_until_quiescent()
        sim.handoff_member("alice", aps[5])
        sim.run_until_quiescent()
        sim.leave_member("bob")
        sim.run_until_quiescent()
        return sim

    def test_same_final_membership(self):
        structural = self._run("structural")
        event = self._run("event")
        assert structural.global_membership().guids() == event.global_membership().guids()

    def test_same_member_location_after_handoff(self):
        structural = self._run("structural")
        event = self._run("event")
        for sim in (structural, event):
            record = sim.global_membership().get("alice")
            assert record is not None
            assert str(record.ap) == sim.access_proxies()[5]


class TestCrashRecoveryEndToEnd:
    def test_structural_gateway_crash_keeps_service_running(self):
        sim = RGBSimulation(
            SimulationConfig(num_aps=16, ring_size=4, hosts_per_ap=1, seed=8)
        ).build()
        before = len(sim.global_membership())
        # Crash an access gateway (a middle-tier entity with child rings).
        gateway = str(sim.hierarchy.rings_in_tier(2)[0].members[0])
        sim.crash_entity(gateway)
        sim.join_member(ap_index=0, guid="after-crash")
        sim.run_until_quiescent()
        assert "after-crash" in sim.global_membership()
        assert len(sim.global_membership()) == before + 1
        assert sim.partition_report().count == 1

    def test_event_mode_survives_multiple_ap_crashes(self):
        sim = RGBSimulation(
            SimulationConfig(
                num_aps=12,
                ring_size=4,
                hosts_per_ap=0,
                seed=9,
                engine_mode="event",
                protocol=ProtocolConfig(aggregation_delay=1.0),
            )
        ).build()
        aps = sim.access_proxies()
        members = {}
        for i, ap in enumerate(aps):
            members[f"m{i}"] = ap
            sim.join_member(ap_id=ap, guid=f"m{i}")
        sim.run_until_quiescent()
        assert len(sim.global_membership()) == len(aps)

        # Crash one AP in each of two different rings.
        rings = {ap: sim.ring_of(ap).ring_id for ap in aps}
        distinct_rings = []
        victims = []
        for ap in aps:
            if rings[ap] not in distinct_rings:
                distinct_rings.append(rings[ap])
                victims.append(ap)
            if len(victims) == 2:
                break
        for victim in victims:
            sim.crash_entity(victim)
        # Fresh traffic in the affected rings triggers detection and repair.
        for victim in victims:
            survivor = next(str(n) for n in sim.ring_of(victim).members if str(n) not in victims)
            sim.join_member(ap_id=survivor, guid=f"trigger-{victim}")
        sim.run_until_quiescent()

        view = sim.global_membership()
        for member, ap in members.items():
            if ap in victims:
                assert member not in view
            else:
                assert member in view
        assert sim.partition_report().count == 1


class TestWireEncoding:
    """The message-passing engine's operation encoding round-trips."""

    def test_member_round_trip(self):
        from tests.test_core_datastructures import make_member

        member = make_member("alice", ap="ap-7")
        assert _decode_member(_encode_member(member)) == member

    def test_operation_round_trip(self):
        from tests.test_core_datastructures import make_member
        from repro.core.identifiers import NodeId
        from repro.core.token import TokenOperation, TokenOperationType

        op = TokenOperation(
            op_type=TokenOperationType.MEMBER_HANDOFF,
            origin=NodeId("ap-2"),
            member=make_member("alice", ap="ap-2"),
            previous_ap=NodeId("ap-1"),
            sequence=42,
        )
        decoded = _decode_op(_encode_op(op))
        assert decoded == op

    def test_ne_operation_round_trip(self):
        from repro.core.identifiers import NodeId
        from repro.core.token import TokenOperation, TokenOperationType

        op = TokenOperation(
            op_type=TokenOperationType.NE_FAILURE,
            origin=NodeId("ap-3"),
            entity=NodeId("ap-9"),
            sequence=7,
        )
        decoded = _decode_op(_encode_op(op))
        assert decoded == op
