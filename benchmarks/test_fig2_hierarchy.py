"""Figure 2 — the ring-based hierarchy for group membership management.

Builds the hierarchy over a generated 4-tier topology and checks the
structural properties the figure depicts: one topmost border-router ring,
one access-gateway ring per border router, one access-proxy ring per gateway,
a leader per ring and a logical link from each leader to its parent node.
"""

from __future__ import annotations

from repro.core.hierarchy import HierarchyBuilder
from repro.sim.rng import RandomStreams
from repro.topology.architecture import TopologySpec
from repro.topology.generator import TopologyGenerator
from repro.topology.rendering import render_hierarchy


def build_hierarchy():
    spec = TopologySpec(num_border_routers=3, ags_per_br=3, aps_per_ag=5, hosts_per_ap=0)
    topology = TopologyGenerator(spec, RandomStreams(42)).generate()
    return HierarchyBuilder("fig2-group").from_topology(topology), topology


def test_fig2_hierarchy_construction(benchmark, report):
    hierarchy, topology = benchmark(build_hierarchy)
    hierarchy.validate()
    arch = topology.architecture

    assert hierarchy.tiers() == [1, 2, 3]
    assert len(hierarchy.rings_in_tier(3)) == 1
    assert len(hierarchy.rings_in_tier(2)) == len(arch.border_routers)
    assert len(hierarchy.rings_in_tier(1)) == len(arch.access_gateways)
    assert hierarchy.total_rings == 1 + 3 + 9
    assert len(hierarchy.access_proxies()) == 45

    for ring in hierarchy.rings.values():
        assert ring.leader is not None
        parent = hierarchy.parent_of_ring(ring.ring_id)
        if ring.tier == 3:
            assert parent is None
        else:
            assert parent is not None
            assert hierarchy.ring_of(parent).tier == ring.tier + 1

    report(
        "Figure 2 — ring-based hierarchy (rings, leaders, logical links)",
        [render_hierarchy(hierarchy, max_rings_per_tier=3)],
    )
