"""Table I — scalability of the tree-based vs the ring-based hierarchy.

Regenerates every row of the paper's Table I from the closed-form models
(formulas 1–6) and validates, for the configurations small enough to simulate
at event level, that the implemented One-Round Token Passing protocol produces
exactly the hop count the formula predicts.
"""

from __future__ import annotations

import pytest

from repro.analysis.hopcount_sim import measure_ring_hopcount
from repro.analysis.scalability import (
    TABLE1_PAPER_VALUES,
    hcn_ring,
    hcn_tree,
    max_ring_to_tree_ratio,
    table1_rows,
)
from repro.analysis.tables import render_table1
from repro.baselines.tree_hierarchy import TreeHierarchy
from repro.baselines.tree_membership import TreeMembershipProtocol


def test_table1_closed_form(benchmark, report):
    rows = benchmark(table1_rows)
    paper = {n: (tree, ring) for n, tree, ring in TABLE1_PAPER_VALUES}
    for row in rows:
        assert (row.hcn_tree, row.hcn_ring) == paper[row.n]
    report("Table I — normalised HopCount (computed == paper for every row)", [render_table1(rows)])


@pytest.mark.parametrize("height,ring_size", [(2, 5), (3, 5), (2, 10)])
def test_table1_measured_ring_hops_match_formula(benchmark, report, height, ring_size):
    measurement = benchmark.pedantic(
        measure_ring_hopcount, args=(height, ring_size), kwargs={"changes": 1}, rounds=1, iterations=1
    )
    assert measurement.measured_hops_per_change == hcn_ring(height, ring_size)
    report(
        f"Table I (measured) — ring hierarchy h={height}, r={ring_size}",
        [
            f"n = {measurement.n} access proxies",
            f"measured hops/change  = {measurement.measured_hops_per_change:.1f}",
            f"analytical HCN_Ring   = {measurement.analytical_hcn}",
        ],
    )


def test_table1_measured_tree_hops(benchmark, report):
    """Measured tree baseline: logical hops equal the no-representative formula."""

    def run():
        tree = TreeHierarchy.regular(height=3, branching=5, with_representatives=True)
        protocol = TreeMembershipProtocol(tree)
        return protocol.join(tree.leaves()[0].node_id, "probe")

    result = benchmark(run)
    assert result.logical_hops == 30  # formula (1)/n for h=3, r=5
    assert result.physical_hops <= hcn_tree(3, 5)
    report(
        "Table I (measured) — tree hierarchy h=3, r=5",
        [
            f"logical hops/change          = {result.logical_hops} (formula (1)/n = 30)",
            f"physical hops with reps      = {result.physical_hops} (paper formula (4) = {hcn_tree(3, 5)})",
            "representative placement saves more hops than the paper's conservative accounting",
        ],
    )


def test_ring_tree_ratio_claim(benchmark, report):
    """Section 5.1 claim: the two hierarchies have comparable scalability."""
    ratio = benchmark(max_ring_to_tree_ratio)
    assert ratio < 1.3
    report(
        "Claim §5.1 — comparable scalability",
        [f"max HCN_Ring / HCN_Tree across Table I = {ratio:.3f} (< 1.3)"],
    )
