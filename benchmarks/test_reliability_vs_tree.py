"""Claim §5.2 — the ring-based hierarchy is more reliable than the tree-based
hierarchy with representatives.

Compares Function-Well probabilities analytically and by Monte-Carlo fault
injection over materialised hierarchies of the same size.
"""

from __future__ import annotations

import pytest

from repro.analysis.montecarlo import (
    simulate_hierarchy_function_well,
    simulate_tree_function_well,
)
from repro.analysis.reliability import (
    hierarchy_function_well_probability,
    tree_function_well_probability,
)


def analytic_comparison():
    rows = []
    for f in (0.001, 0.005, 0.02):
        ring = hierarchy_function_well_probability(3, 5, f, 1)
        tree = tree_function_well_probability(4, 5, f, 1)
        rows.append((f, ring, tree))
    return rows


def test_ring_more_reliable_than_tree_analytical(benchmark, report):
    rows = benchmark(analytic_comparison)
    lines = [f"{'f (%)':>6} {'ring fw(%)':>11} {'tree fw(%)':>11}"]
    for f, ring, tree in rows:
        assert ring > tree
        lines.append(f"{100 * f:>6.1f} {100 * ring:>11.3f} {100 * tree:>11.3f}")
    report("Claim §5.2 — ring vs tree reliability (closed form, n=125)", lines)


@pytest.mark.parametrize("fault_probability", [0.02, 0.05])
def test_ring_more_reliable_than_tree_monte_carlo(benchmark, report, fault_probability):
    trials = 500

    def run():
        ring = simulate_hierarchy_function_well(
            2, 5, fault_probability, max_partitions=1, trials=trials, seed=29
        )
        tree = simulate_tree_function_well(
            3, 5, fault_probability, max_partitions=1, trials=trials, seed=29
        )
        return ring, tree

    ring, tree = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ring.estimate > tree.estimate
    report(
        f"Claim §5.2 — ring vs tree reliability (Monte-Carlo, f={fault_probability:.0%}, n=25)",
        [
            f"ring hierarchy Function-Well = {100 * ring.estimate:.2f}%",
            f"tree hierarchy Function-Well = {100 * tree.estimate:.2f}%",
            f"trials per estimate          = {trials}",
        ],
    )
