"""Ablation A1 — TMS vs BMS vs IMS membership maintenance/query schemes.

The paper (Section 4.4) argues TMS queries are cheaper but its maintenance is
more expensive at the top; BMS is the reverse.  The ablation measures query
hops, result completeness and storage footprint per scheme on the same
populated hierarchy.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.core.hierarchy import HierarchyBuilder
from repro.core.one_round import OneRoundEngine
from repro.core.query import MembershipQueryService, MembershipScheme


def build_populated_engine():
    hierarchy = HierarchyBuilder("a1").regular(ring_size=5, height=3)
    engine = OneRoundEngine(hierarchy, config=ProtocolConfig(aggregation_delay=0.0))
    for index, ap in enumerate(hierarchy.access_proxies()):
        if index % 5 == 0:
            engine.member_join(ap, f"member-{index:04d}")
    engine.propagate()
    return engine


def test_ablation_query_schemes(benchmark, report):
    engine = build_populated_engine()
    service = MembershipQueryService(engine)

    def run_all():
        return {scheme: service.query(scheme) for scheme in MembershipScheme}

    results = benchmark(run_all)
    guid_sets = {scheme: tuple(result.guids) for scheme, result in results.items()}
    assert len(set(guid_sets.values())) == 1  # all schemes answer identically
    assert results[MembershipScheme.TMS].message_hops < results[MembershipScheme.BMS].message_hops
    assert results[MembershipScheme.IMS].message_hops <= results[MembershipScheme.BMS].message_hops

    lines = [f"{'scheme':<14} {'query hops':>10} {'entities':>9} {'storage records':>16}"]
    for scheme, result in results.items():
        cost = service.maintenance_cost(scheme)
        lines.append(
            f"{scheme.value:<14} {result.message_hops:>10} {len(result.entities_contacted):>9} "
            f"{cost['records']:>16}"
        )
    lines.append(f"members returned by every scheme: {len(results[MembershipScheme.TMS])}")
    report("Ablation A1 — membership maintenance schemes (n=125, 25 members)", lines)
