"""Ablation A2 — message-queue aggregation vs one round per change.

The paper's MQ is "self-optimized for aggregating some successive messages
into one".  This ablation drives an identical burst of membership changes
through the protocol with aggregation on and off and compares hop counts and
round counts.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.core.hierarchy import HierarchyBuilder
from repro.core.one_round import OneRoundEngine


BURST = 12


def run_burst(aggregate: bool):
    hierarchy = HierarchyBuilder("a2").regular(ring_size=5, height=2)
    engine = OneRoundEngine(
        hierarchy, config=ProtocolConfig(aggregation_delay=0.0, aggregate_mq=aggregate)
    )
    ring = hierarchy.bottom_rings()[0]
    # A burst of joins and churny join+leave pairs landing at the same proxies.
    for i in range(BURST):
        ap = ring.members[i % len(ring.members)]
        engine.member_join(ap, f"burst-{i:03d}")
    for i in range(0, BURST, 3):
        ap = ring.members[i % len(ring.members)]
        engine.member_leave(ap, f"burst-{i:03d}")
    propagation = engine.propagate()
    return engine, propagation


def test_ablation_mq_aggregation(benchmark, report):
    def run_both():
        return run_burst(aggregate=True), run_burst(aggregate=False)

    (agg_engine, agg_report), (plain_engine, plain_report) = benchmark(run_both)

    # Both variants converge to the same membership.
    assert agg_engine.global_guids() == plain_engine.global_guids()
    expected = {f"burst-{i:03d}" for i in range(BURST)} - {f"burst-{i:03d}" for i in range(0, BURST, 3)}
    assert set(agg_engine.global_guids()) == expected

    # Aggregation never costs more hops or rounds, and cancels join+leave pairs.
    assert agg_report.hop_count <= plain_report.hop_count
    assert agg_report.round_count <= plain_report.round_count

    report(
        "Ablation A2 — MQ aggregation (burst of 12 joins + 4 leaves)",
        [
            f"{'variant':<16} {'rounds':>7} {'hop count':>10}",
            f"{'aggregated':<16} {agg_report.round_count:>7} {agg_report.hop_count:>10}",
            f"{'one-per-change':<16} {plain_report.round_count:>7} {plain_report.hop_count:>10}",
            f"hops saved by aggregation: "
            f"{100.0 * (1 - agg_report.hop_count / plain_report.hop_count):.1f}%",
        ],
    )
