"""Ablation A4 — RGB vs flat token ring vs tree vs SWIM-style gossip.

Propagates the same membership change over each scheme at several group sizes
and compares per-change message cost.  The expected shape: the flat ring is
cheapest only for tiny groups and grows linearly; RGB and the tree hierarchy
grow much more slowly and stay within ~25% of each other; gossip trades
determinism for probabilistic convergence with O(n·fanout·log n) messages.
"""

from __future__ import annotations

from repro.analysis.scalability import hcn_ring, hcn_tree
from repro.baselines.flat_ring import FlatRingMembership
from repro.baselines.gossip import GossipMembership
from repro.baselines.tree_hierarchy import TreeHierarchy
from repro.baselines.tree_membership import TreeMembershipProtocol


SIZES = [(5, 2), (5, 3)]  # (ring_size, height) -> n = 25, 125


def compare_at(ring_size: int, height: int):
    n = ring_size**height
    proxies = [f"ap-{i:04d}" for i in range(n)]

    flat = FlatRingMembership(proxies)
    flat_hops = flat.join(proxies[0], "probe").hops

    tree = TreeHierarchy.regular(height=height + 1, branching=ring_size, with_representatives=True)
    tree_protocol = TreeMembershipProtocol(tree)
    tree_hops = tree_protocol.join(tree.leaves()[0].node_id, "probe").physical_hops

    gossip = GossipMembership(proxies, fanout=2, seed=5)
    gossip_report = gossip.join(proxies[0], "probe")

    return {
        "n": n,
        "rgb": hcn_ring(height, ring_size),
        "tree_formula": hcn_tree(height + 1, ring_size),
        "tree_measured": tree_hops,
        "flat_ring": flat_hops,
        "gossip_messages": gossip_report.messages,
        "gossip_rounds": gossip_report.rounds,
    }


def test_ablation_baseline_comparison(benchmark, report):
    rows = benchmark.pedantic(
        lambda: [compare_at(r, h) for r, h in SIZES], rounds=1, iterations=1
    )
    lines = [
        f"{'n':>6} {'RGB':>7} {'tree(4)':>8} {'tree meas.':>11} {'flat ring':>10} "
        f"{'gossip msgs':>12} {'gossip rounds':>14}"
    ]
    for row in rows:
        lines.append(
            f"{row['n']:>6} {row['rgb']:>7} {row['tree_formula']:>8} {row['tree_measured']:>11} "
            f"{row['flat_ring']:>10} {row['gossip_messages']:>12} {row['gossip_rounds']:>14}"
        )
    report("Ablation A4 — per-change message cost across membership schemes", lines)

    small, large = rows[0], rows[1]
    # Flat ring costs exactly n hops: cheapest at n=25, already ~about the same
    # as RGB's hierarchical cost well before n=125 relative growth explodes.
    assert small["flat_ring"] == small["n"]
    assert large["flat_ring"] == large["n"]
    # RGB grows far slower than linearly: 5x more proxies, < 5x more hops... in
    # fact the hierarchy costs about (r+1)/r per proxy ring, bounded here.
    assert large["rgb"] / small["rgb"] < large["flat_ring"] / small["flat_ring"] * 1.2
    # RGB stays within ~25% of the tree hierarchy (the paper's comparability claim).
    assert large["rgb"] / large["tree_formula"] < 1.3
    # Gossip needs several rounds and strictly more messages than RGB's hop count.
    assert large["gossip_messages"] > large["rgb"]
    assert large["gossip_rounds"] >= 3
