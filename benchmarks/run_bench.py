#!/usr/bin/env python
"""Kernel performance trajectory: one-round propagation throughput.

Measures the ops/s of full One-Round Token Passing propagations on the
paper's regular hierarchies at r=8 for h in {3, 4, 5} (n = 512 / 4096 /
32768 access proxies) on both the batched-delta and the seed per-operation
apply paths, and writes the results to ``BENCH_kernel.json`` next to this
script so future PRs can track the perf trajectory.

With ``--matrix``, sweeps the event-driven scenario matrix instead
(:mod:`repro.workloads.matrix`) and records per-cell throughput in
``BENCH_matrix.json``.

With ``--ablation``, replays the same seeded workloads through every
membership protocol behind the :class:`repro.baselines.driver` seam (RGB,
flat ring, gossip, tree) and archives the head-to-head per-change costs —
hops, on-the-wire messages, convergence rounds, wall time — in
``BENCH_ablation.json``, alongside the paper's closed-form HCN values.

With ``--serving``, runs the queries-under-churn serving benchmark: the
same seeded churn cell served once by the batched epoch-consistent
front-end (:mod:`repro.serving`) and once by the per-query object path,
archiving per-scheme qps / p50 / p99 and the snapshot cache counters in
``BENCH_serving.json``.

With ``--perf``, runs the named perf-bench tier (``benchmarks/perf.py``)
through this entry point, including bench-name filtering (``--only``) and
baseline re-pinning (``--update-baseline``) — so a single bench can be
re-measured or re-baselined without the full suite.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--joins N] [--out PATH]
    PYTHONPATH=src python benchmarks/run_bench.py --matrix [--matrix-sizes 1000 10000]
    PYTHONPATH=src python benchmarks/run_bench.py --matrix --family flash_crowd
    PYTHONPATH=src python benchmarks/run_bench.py --ablation [--ablation-sizes 1000 10000]
    PYTHONPATH=src python benchmarks/run_bench.py --ablation \\
        --ablation-scenarios churn correlated_failure --ablation-sizes 64
    PYTHONPATH=src python benchmarks/run_bench.py --serving [--serving-sizes 1000 10000]
    PYTHONPATH=src python benchmarks/run_bench.py --perf --perf-tier small
    PYTHONPATH=src python benchmarks/run_bench.py --perf --only large_scale_1m --update-baseline
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.core.config import ProtocolConfig
from repro.core.hierarchy import HierarchyBuilder
from repro.core.one_round import OneRoundEngine

RING_SIZE = 8
HEIGHTS = (3, 4, 5)


def measure_configuration(height: int, joins: int, batched: bool) -> dict:
    """Propagate a ``joins``-sized burst on the r=8, h=``height`` hierarchy."""
    config = ProtocolConfig(aggregation_delay=0.0, batched_apply=batched)
    build_start = time.perf_counter()
    hierarchy = HierarchyBuilder("bench").regular(ring_size=RING_SIZE, height=height)
    engine = OneRoundEngine(hierarchy, config=config)
    build_seconds = time.perf_counter() - build_start
    aps = hierarchy.access_proxies()
    stride = max(1, len(aps) // joins)
    for index in range(joins):
        engine.member_join(aps[(index * stride) % len(aps)], f"bench-{index:06d}")
    start = time.perf_counter()
    report = engine.propagate()
    elapsed = time.perf_counter() - start
    return {
        "ring_size": RING_SIZE,
        "height": height,
        "access_proxies": len(aps),
        "rings": hierarchy.total_rings,
        "batched_apply": batched,
        "joins": joins,
        "build_seconds": round(build_seconds, 4),
        "propagate_seconds": round(elapsed, 4),
        "ops_per_second": round(joins / elapsed, 2) if elapsed > 0 else None,
        "rounds": report.round_count,
        "hop_count": report.hop_count,
        "hops_per_second": round(report.hop_count / elapsed, 1) if elapsed > 0 else None,
    }


def run_matrix(sizes, events, out_path: Path, jobs: int = 1, scenarios=None) -> None:
    """Sweep the event-driven scenario matrix and archive cell throughput."""
    from repro.analysis.tables import render_matrix
    from repro.workloads.matrix import LOSS_RATES, SCENARIOS, ScenarioMatrix, get_scenario
    from repro.workloads.parallel import run_matrix as run_matrix_parallel

    scenarios = tuple(scenarios) if scenarios else tuple(SCENARIOS)
    for name in scenarios:
        get_scenario(name)  # fail fast, listing the registered scenarios
    matrix = ScenarioMatrix(sizes=tuple(sizes), events_per_cell=events, scenarios=scenarios)
    report = run_matrix_parallel(matrix, jobs=jobs, progress=True)
    report.raise_if_failed()
    results = report.results
    print()
    print(render_matrix([r.record for r in results]))
    payload = {
        "benchmark": "scenario-matrix throughput (event-driven harness)",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scenarios": list(scenarios),
        "loss_rates": list(LOSS_RATES),
        "sizes": list(sizes),
        "events_per_cell": events,
        "jobs": jobs,
        "cells": [
            dict(
                r.record.to_json(),
                wall_seconds=round(r.wall_seconds, 4),
                dispatched_events=r.dispatched_events,
                events_per_second=round(r.events_per_second, 1),
                converged=r.converged,
                ring_agreement=r.ring_agreement,
            )
            for r in results
        ],
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")


def run_serving(sizes, events, out_path: Path) -> None:
    """Queries-under-churn: batched serving vs the per-query object path.

    For every size, runs the seeded churn cell twice — served by the
    batched columnar front-end and by the per-query object reference — and
    archives per-scheme qps / p50 / p99 plus the snapshot cache counters in
    ``BENCH_serving.json``.  The object pass issues fewer queries (qps is
    computed from per-query latencies, so counts don't skew it); sizes at
    and above 10k keep the per-query BMS fan-out affordable that way.
    """
    from repro.analysis.tables import render_serving
    from repro.workloads.query_load import QueryLoadConfig, run_serving_cell

    rows = []
    for size in sizes:
        for mode, backend, load in (
            (
                "batched",
                "columnar",
                QueryLoadConfig(mode="batched", batch_size=24, batches=8, interval=2.0),
            ),
            (
                "object",
                "object",
                QueryLoadConfig(mode="object", batch_size=6, batches=2, interval=2.0),
            ),
        ):
            result = run_serving_cell(
                num_proxies=size, mode=mode, backend=backend, events=events, config=load
            )
            rows.append(result)
            print(
                f"n={size:>7} [{mode:>7}]: {result['overall_qps']:10.1f} qps over "
                f"{result['total_queries']} queries",
                flush=True,
            )
    print()
    print(render_serving(rows))
    pairs = {}
    for row in rows:
        pairs.setdefault(row["num_proxies"], {})[row["mode"]] = row["overall_qps"]
    speedups = {
        str(size): round(modes["batched"] / modes["object"], 2)
        for size, modes in sorted(pairs.items())
        if modes.get("object") and "batched" in modes
    }
    for size, speedup in speedups.items():
        print(f"n={size}: batched serving {speedup}x object path")
    payload = {
        "benchmark": "membership queries under churn (serving layer vs object path)",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "sizes": list(sizes),
        "events_per_cell": events,
        "speedup_batched_vs_object": speedups,
        "cells": rows,
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")


def run_ablation(sizes, losses, scenarios, events, out_path: Path, jobs: int = 1) -> None:
    """Drive every protocol through the same workloads; archive the costs."""
    from repro.analysis.scalability import hcn_ring, hcn_tree
    from repro.analysis.tables import render_ablation, render_family_head_to_head
    from repro.workloads.spec import available_families
    from repro.baselines.driver import (
        PROTOCOL_NAMES,
        ring_shape_for_proxies,
        tree_shape_for_leaves,
    )
    from repro.workloads.matrix import AblationSweep
    from repro.workloads.parallel import run_ablation as run_ablation_parallel

    sweep = AblationSweep(
        sizes=tuple(sizes), losses=tuple(losses), scenarios=tuple(scenarios),
        events_per_cell=events,
    )
    report = run_ablation_parallel(sweep, jobs=jobs, progress=True)
    report.raise_if_failed()
    results = report.results
    print()
    print(render_ablation([r.record for r in results]))
    family_records = [
        r.record for r in results
        if str(r.record.params.get("scenario", "")) in available_families()
    ]
    if family_records:
        print()
        print(render_family_head_to_head(family_records))

    closed_form = []
    for n in sizes:
        r, h = ring_shape_for_proxies(n)
        branching, tree_h = tree_shape_for_leaves(n)
        closed_form.append(
            {
                "n": n,
                "hcn_ring": hcn_ring(h, r),
                "hcn_tree": hcn_tree(tree_h, branching),
                "hcn_flat": n,
            }
        )
    payload = {
        "benchmark": "protocol ablation (same workload through every membership driver)",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "protocols": list(PROTOCOL_NAMES),
        "sizes": list(sizes),
        "loss_rates": list(losses),
        "scenarios": list(scenarios),
        "events_per_cell": events,
        "jobs": jobs,
        "closed_form_hcn": closed_form,
        "cells": [
            dict(
                r.record.to_json(),
                wall_seconds=round(r.wall_seconds, 4),
                converged=r.converged,
            )
            for r in results
        ],
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--joins", type=int, default=32, help="joins per measured burst")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent / "BENCH_kernel.json",
        help="output JSON path",
    )
    parser.add_argument(
        "--matrix",
        action="store_true",
        help="run the scenario matrix sweep instead of the kernel benchmark",
    )
    parser.add_argument(
        "--matrix-sizes",
        type=int,
        nargs="+",
        default=[1_000],
        help="proxy counts for the matrix sweep (1000 / 10000 / 100000)",
    )
    parser.add_argument(
        "--matrix-events", type=int, default=24, help="workload events per matrix cell"
    )
    parser.add_argument(
        "--matrix-out",
        type=Path,
        default=Path(__file__).resolve().parent / "BENCH_matrix.json",
        help="matrix output JSON path",
    )
    parser.add_argument(
        "--family",
        nargs="+",
        default=None,
        metavar="NAME",
        help="with --matrix: restrict the sweep to these scenarios — legacy "
        "matrix scenarios or adversarial families (flash_crowd, "
        "correlated_failure, diurnal_mobility, replay_injection)",
    )
    parser.add_argument(
        "--ablation",
        action="store_true",
        help="run the head-to-head protocol ablation instead of the kernel benchmark",
    )
    parser.add_argument(
        "--ablation-sizes",
        type=int,
        nargs="+",
        default=[1_000, 10_000],
        help="proxy counts for the ablation sweep",
    )
    parser.add_argument(
        "--ablation-losses",
        type=float,
        nargs="+",
        default=[0.0, 0.01],
        help="per-link loss rates for the ablation sweep",
    )
    parser.add_argument(
        "--ablation-scenarios",
        nargs="+",
        default=["churn"],
        help="scenarios for the ablation sweep",
    )
    parser.add_argument(
        "--ablation-events", type=int, default=24, help="workload events per ablation cell"
    )
    parser.add_argument(
        "--ablation-out",
        type=Path,
        default=Path(__file__).resolve().parent / "BENCH_ablation.json",
        help="ablation output JSON path",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for --matrix/--ablation sweeps "
        "(cell results are bit-identical to --jobs 1)",
    )
    parser.add_argument(
        "--serving",
        action="store_true",
        help="run the queries-under-churn serving benchmark (batched "
        "front-end vs per-query object path) instead of the kernel benchmark",
    )
    parser.add_argument(
        "--serving-sizes",
        type=int,
        nargs="+",
        default=[1_000],
        help="proxy counts for the serving benchmark (1000 / 10000 / 100000)",
    )
    parser.add_argument(
        "--serving-events",
        type=int,
        default=24,
        help="churn events interleaved with query batches per serving cell",
    )
    parser.add_argument(
        "--serving-out",
        type=Path,
        default=Path(__file__).resolve().parent / "BENCH_serving.json",
        help="serving output JSON path",
    )
    parser.add_argument(
        "--perf",
        action="store_true",
        help="run the named perf-bench tier (benchmarks/perf.py) instead of "
        "the kernel benchmark",
    )
    parser.add_argument(
        "--perf-tier",
        choices=["small", "full", "all"],
        default="small",
        help="perf tier for --perf",
    )
    parser.add_argument(
        "--only",
        metavar="NAME",
        action="append",
        default=None,
        help="with --perf: run only the named bench (repeatable, overrides "
        "--perf-tier)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="with --perf: re-pin perf_baseline.json bands to the benches "
        "that ran (works together with --only — no full-suite run needed)",
    )
    args = parser.parse_args(argv)
    if args.joins < 1:
        parser.error(f"--joins must be >= 1, got {args.joins}")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if (args.only or args.update_baseline) and not args.perf:
        parser.error("--only/--update-baseline require --perf")
    if args.family and not args.matrix:
        parser.error("--family requires --matrix")
    if args.perf and (args.matrix or args.ablation or args.serving):
        parser.error("--perf cannot be combined with --matrix/--ablation/--serving")
    if args.serving and (args.matrix or args.ablation):
        parser.error("--serving cannot be combined with --matrix/--ablation")

    if args.perf:
        # Delegate to benchmarks/perf.py in-process (same directory).
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        import perf

        perf_argv = ["--tier", args.perf_tier]
        for name in args.only or ():
            perf_argv += ["--only", name]
        if args.update_baseline:
            perf_argv.append("--update-baseline")
        return perf.main(perf_argv)

    if args.serving:
        run_serving(args.serving_sizes, args.serving_events, args.serving_out)
        return 0

    if args.matrix:
        run_matrix(
            args.matrix_sizes,
            args.matrix_events,
            args.matrix_out,
            jobs=args.jobs,
            scenarios=args.family,
        )
        return 0

    if args.ablation:
        run_ablation(
            args.ablation_sizes,
            args.ablation_losses,
            args.ablation_scenarios,
            args.ablation_events,
            args.ablation_out,
            jobs=args.jobs,
        )
        return 0

    results = []
    for height in HEIGHTS:
        for batched in (True, False):
            row = measure_configuration(height, args.joins, batched)
            results.append(row)
            mode = "batched" if batched else "per-op"
            print(
                f"r={RING_SIZE} h={height} n={row['access_proxies']:>6} [{mode:>7}]: "
                f"{row['propagate_seconds']:.3f}s, {row['ops_per_second']} ops/s, "
                f"{row['rounds']} rounds"
            )

    payload = {
        "benchmark": "one-round propagation throughput (Table I hierarchies, r=8)",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
