"""Figure 1 — the 4-tier integrated network architecture.

Regenerates the figure's structural content: a topology with mobile hosts
attached to wireless access proxies, proxies attached to access gateways in
autonomous systems, and gateways attached to border routers, with the wireless
access networks drawn from the three kinds the paper names.
"""

from __future__ import annotations

from repro.sim.rng import RandomStreams
from repro.topology.architecture import AccessNetworkKind, TopologySpec
from repro.topology.generator import TopologyGenerator
from repro.topology.rendering import render_architecture, render_tier_counts


def build_topology():
    spec = TopologySpec(num_border_routers=3, ags_per_br=3, aps_per_ag=5, hosts_per_ap=4)
    return TopologyGenerator(spec, RandomStreams(42)).generate()


def test_fig1_architecture_generation(benchmark, report):
    topology = benchmark(build_topology)
    arch = topology.architecture
    counts = arch.tier_counts()
    assert counts["border_routers"] == 3
    assert counts["access_gateways"] == 9
    assert counts["access_proxies"] == 45
    assert counts["mobile_hosts"] == 180
    kinds = set(arch.ap_access_network.values())
    assert kinds == set(AccessNetworkKind)
    # Every entity is reachable over the generated links (one internetwork).
    assert len(topology.network.connected_components()) == 1
    report(
        "Figure 1 — 4-tier integrated network architecture",
        [render_tier_counts(arch), "", render_architecture(arch, max_children=2)],
    )
