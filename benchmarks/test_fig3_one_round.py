"""Figure 3 — the One-Round Token Passing Membership algorithm.

Exercises the algorithm end-to-end on both engines: a single membership change
is captured at an access proxy, circulates each involved ring exactly once,
climbs to the topmost ring and leaves every ring in agreement.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig, SimulationConfig
from repro.core.hierarchy import HierarchyBuilder
from repro.core.one_round import OneRoundEngine
from repro.core.simulation import RGBSimulation


def run_structural_round():
    hierarchy = HierarchyBuilder("fig3").regular(ring_size=5, height=2)
    engine = OneRoundEngine(hierarchy, config=ProtocolConfig(aggregation_delay=0.0))
    engine.member_join(hierarchy.access_proxies()[7], "figure3-member")
    report = engine.propagate()
    return engine, report


def test_fig3_structural_one_round(benchmark, report):
    engine, propagation = benchmark(run_structural_round)
    hierarchy = engine.hierarchy
    # One round per ring, agreement everywhere, change visible at the top.
    assert propagation.round_count == hierarchy.total_rings
    assert all(engine.ring_agreement(ring_id) for ring_id in hierarchy.rings)
    assert engine.global_guids() == ["figure3-member"]
    per_ring = {}
    for round_result in propagation.rounds:
        per_ring.setdefault(round_result.ring_id, 0)
        per_ring[round_result.ring_id] += 1
    assert set(per_ring.values()) == {1}
    report(
        "Figure 3 — one-round token passing (structural engine)",
        [
            f"rings involved        = {propagation.round_count} (= total rings {hierarchy.total_rings})",
            f"token hops            = {propagation.token_hops}",
            f"notification messages = {propagation.notify_hops}",
            f"holder acknowledgements = {propagation.ack_hops}",
            "every ring reached agreement within a single round",
        ],
    )


def run_event_round():
    sim = RGBSimulation(
        SimulationConfig(
            num_aps=25,
            ring_size=5,
            hosts_per_ap=0,
            seed=42,
            engine_mode="event",
            protocol=ProtocolConfig(aggregation_delay=1.0),
        )
    ).build()
    member = sim.join_member(ap_index=7, guid="figure3-member")
    sim.run_until_quiescent()
    return sim, member


def test_fig3_event_driven_one_round(benchmark, report):
    sim, member = benchmark.pedantic(run_event_round, rounds=1, iterations=1)
    assert member.guid in sim.global_membership()
    rounds = sim.metrics.counter("protocol.rounds_completed").value
    hops = sim.metrics.counter("protocol.token_hops").value
    latency = sim.engine.now
    assert rounds >= 1 and hops > 0
    report(
        "Figure 3 — one-round token passing (message-passing engine)",
        [
            f"token rounds completed = {rounds}",
            f"token hops on the wire = {hops}",
            f"propagation latency    = {latency:.1f} simulated ms",
        ],
    )
