"""Kernel scalability — 100k-proxy propagation and batched-delta speedup.

Two claims back the unified-kernel refactor:

1. The ROADMAP's scale direction: a regular hierarchy with >= 100 000 access
   proxies (r=10, h=5 — far beyond Table I's largest n=100 000 row, which the
   paper only evaluates in closed form) completes one full propagation of a
   join batch through every logical ring, with sampled ring agreement.
2. The batched :class:`repro.core.deltas.MembershipDelta` application path is
   >= 3x faster than the seed's per-operation path on the Table I workload
   (r=8 regular hierarchy populated with members, then a join burst).
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

import pytest

from repro.core.config import ProtocolConfig
from repro.core.hierarchy import HierarchyBuilder
from repro.core.one_round import OneRoundEngine
from repro.workloads.scenarios import run_large_scale_scenario


@pytest.mark.slow
def test_100k_proxy_full_propagation(report):
    """>= 100k access proxies, one full batched propagation, views agree."""
    result = run_large_scale_scenario(ring_size=10, height=5, joins=16)
    details = result.details
    assert details["access_proxies"] >= 100_000
    assert result.final_membership == 16
    assert details["sampled_ring_agreement"] is True
    # Every ring participated: downward dissemination reaches the full hierarchy.
    assert details["rounds"] >= details["rings"]
    report(
        "Kernel scale — 100 000 access proxies, one full propagation",
        [
            f"access proxies        = {details['access_proxies']}",
            f"rings / entities      = {details['rings']} / {details['entities']}",
            f"build                 = {details['build_seconds']:.2f}s",
            f"propagate (16 joins)  = {details['propagate_seconds']:.2f}s",
            f"token rounds          = {details['rounds']}",
            f"hop count             = {details['hop_count']}",
            f"sampled ring agreement = {details['sampled_ring_agreement']}",
        ],
    )


def _table1_burst(batched: bool, prejoin: int, measured: int, ring_size: int = 8, height: int = 3):
    """Propagate a join burst on the Table I regular hierarchy (r=8).

    The engine is seeded on the fast path either way; only the measured
    propagation switches between the batched delta and the seed's
    per-operation reference path.
    """
    config = ProtocolConfig(aggregation_delay=0.0, batched_apply=True)
    hierarchy = HierarchyBuilder("table1").regular(ring_size=ring_size, height=height)
    engine = OneRoundEngine(hierarchy, config=config)
    aps = hierarchy.access_proxies()
    for index in range(prejoin):
        engine.member_join(aps[index % len(aps)], f"seed-{index:05d}")
    engine.propagate()
    engine.kernel.config = replace(config, batched_apply=batched)
    for index in range(measured):
        engine.member_join(aps[(index * 7) % len(aps)], f"burst-{index:05d}")
    start = time.perf_counter()
    propagation = engine.propagate()
    elapsed = time.perf_counter() - start
    return elapsed, propagation, engine


def test_batched_apply_beats_per_op_3x_on_table1_workload(report):
    """Acceptance: batched apply >= 3x the seed per-op path, identical views.

    Scheduler noise can only *inflate* a wall-clock sample, and a false
    failure needs the batched (numerator-side) sample inflated — so the
    cheap batched run is taken best-of-two while the expensive per-op run
    is measured once.  The real margin is ~7x against the 3x bar.
    """
    prejoin, measured = 4096, 512
    batched_s, batched_rep, batched_eng = _table1_burst(True, prejoin, measured)
    batched_retry_s, _, _ = _table1_burst(True, prejoin, measured)
    batched_s = min(batched_s, batched_retry_s)
    per_op_s, per_op_rep, per_op_eng = _table1_burst(False, prejoin, measured)
    # Identical protocol traffic and identical final membership either way.
    assert batched_rep.round_count == per_op_rep.round_count
    assert batched_rep.hop_count == per_op_rep.hop_count
    assert batched_eng.global_guids() == per_op_eng.global_guids()
    ratio = per_op_s / batched_s
    assert ratio >= 3.0, (
        f"batched apply only {ratio:.2f}x faster than per-op "
        f"({batched_s:.3f}s vs {per_op_s:.3f}s)"
    )
    ops_per_s = measured / batched_s
    report(
        "Kernel scale — batched delta vs seed per-op path (Table I workload, r=8, h=3)",
        [
            f"pre-populated members  = {prejoin}",
            f"measured join burst    = {measured}",
            f"per-op path            = {per_op_s:.3f}s",
            f"batched delta path     = {batched_s:.3f}s",
            f"speedup                = {ratio:.1f}x (acceptance: >= 3x)",
            f"batched throughput     = {ops_per_s:.0f} joins/s propagated",
        ],
    )


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("RUN_SLOW_BENCHES"),
    reason="~90s / ~3GB: run with RUN_SLOW_BENCHES=1 (scheduled slow CI tier)",
)
def test_1m_proxy_full_propagation(report):
    """First 1M-proxy propagation (r=10, h=6): the PR 4 perf-layer milestone.

    Tractable only with the dirty-ring pending set — the seed's
    ``pending_rings`` rescanned all 111 111 rings per sweep — plus the
    array-backed ring index and the batched delta path.
    """
    result = run_large_scale_scenario(ring_size=10, height=6, joins=4)
    details = result.details
    assert details["access_proxies"] == 1_000_000
    assert result.final_membership == 4
    assert details["sampled_ring_agreement"] is True
    assert details["rounds"] >= details["rings"]
    report(
        "Kernel scale — 1 000 000 access proxies, one full propagation",
        [
            f"access proxies        = {details['access_proxies']}",
            f"rings / entities      = {details['rings']} / {details['entities']}",
            f"build                 = {details['build_seconds']:.2f}s",
            f"propagate (4 joins)   = {details['propagate_seconds']:.2f}s",
            f"token rounds          = {details['rounds']}",
            f"hop count             = {details['hop_count']}",
        ],
    )
