"""Table II — Function-Well probability of the ring-based hierarchy.

Regenerates every row of the paper's Table II from formulas (7)–(8), checks
the abstract's headline claims, and validates the closed form against
Monte-Carlo fault injection over a materialised hierarchy (down-scaled so the
benchmark stays fast; the scaling does not change the comparison's shape).
"""

from __future__ import annotations

import pytest

from repro.analysis.montecarlo import simulate_hierarchy_function_well
from repro.analysis.reliability import (
    TABLE2_PAPER_VALUES,
    headline_claims,
    hierarchy_function_well_probability,
    table2_rows,
)
from repro.analysis.tables import render_table2


def test_table2_closed_form(benchmark, report):
    rows = benchmark(table2_rows)
    paper = {(n, round(f, 3), k): value for n, f, k, value in TABLE2_PAPER_VALUES}
    worst = 0.0
    for row in rows:
        key = (row.n, round(100.0 * row.fault_probability, 3), row.max_partitions)
        delta = abs(row.function_well_percent - paper[key])
        worst = max(worst, delta)
        assert delta < 1.5, f"row {key}: computed {row.function_well_percent:.3f} vs paper {paper[key]}"
    report(
        "Table II — Function-Well probability (computed vs paper)",
        [render_table2(rows), f"largest |computed - paper| = {worst:.3f} percentage points"],
    )


def test_headline_claims(benchmark, report):
    claims = benchmark(headline_claims)
    no_partition = 100.0 * claims["no_partition_probability"]
    k3 = 100.0 * claims["at_most_3_partitions_probability"]
    assert no_partition == pytest.approx(99.5, abs=0.05)
    assert k3 > 99.99
    report(
        "Abstract claims (n=1000 APs, f=0.1%)",
        [
            f"no partition (k=1)         = {no_partition:.3f}%   (paper: 99.500%)",
            f"at most 3 partitions (k=3) = {k3:.3f}%   (paper: 99.999%)",
        ],
    )


@pytest.mark.parametrize("fault_probability,k", [(0.02, 1), (0.02, 3), (0.05, 1)])
def test_table2_monte_carlo_validation(benchmark, report, fault_probability, k):
    height, ring_size, trials = 2, 5, 600
    analytical = hierarchy_function_well_probability(height, ring_size, fault_probability, k)

    def run():
        formula_view = simulate_hierarchy_function_well(
            height, ring_size, fault_probability,
            max_partitions=k, trials=trials, seed=17, analytical=analytical, criterion="rings",
        )
        systems_view = simulate_hierarchy_function_well(
            height, ring_size, fault_probability,
            max_partitions=k, trials=trials, seed=17, criterion="partitions",
        )
        return formula_view, systems_view

    formula_view, systems_view = benchmark.pedantic(run, rounds=1, iterations=1)
    # Sampling the formula's own criterion reproduces the closed form...
    assert formula_view.within(sigmas=5.0, floor=0.03)
    # ...and the systems-level view (actual partitions after repair) is never
    # worse than the conservative analytical bound.
    assert systems_view.estimate >= analytical - 5.0 * systems_view.stderr
    report(
        f"Table II (Monte-Carlo validation) — h={height}, r={ring_size}, f={fault_probability:.0%}, k={k}",
        [
            f"analytical Function-Well (formula 8)     = {100 * analytical:.2f}%",
            f"simulated, formula criterion             = {100 * formula_view.estimate:.2f}%  "
            f"({trials} trials, ±{100 * formula_view.stderr:.2f}%)",
            f"simulated, systems view (partition count) = {100 * systems_view.estimate:.2f}%",
        ],
    )
