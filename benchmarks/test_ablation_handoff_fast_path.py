"""Ablation A5 — fast handoff via ListOfNeighborMembers.

The paper motivates RGB with frequent handoffs between ever-smaller wireless
cells and introduces ``ListOfNeighborMembers`` so a neighbouring access proxy
already knows an arriving member.  This ablation runs handoff storms of
varying locality and measures the fast-path hit ratio: with high locality the
destination proxy almost always has the member in its neighbour list; with
random movement it rarely does.
"""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig
from repro.core.simulation import RGBSimulation
from repro.workloads.handoffs import HandoffStorm


def run_storm(locality: float, handoffs: int = 60, seed: int = 13):
    sim = RGBSimulation(
        SimulationConfig(num_aps=25, ring_size=5, hosts_per_ap=0, seed=seed)
    ).build()
    aps = sim.access_proxies()
    attachment = {}
    for index in range(20):
        ap = aps[(index * 2) % len(aps)]
        member = sim.join_member(ap_id=ap, guid=f"mh-{index:03d}")
        attachment[str(member.guid)] = ap
    sim.run_until_quiescent()
    neighbor_map = {ap: [str(n) for n in sim.ring_of(ap).members if str(n) != ap] for ap in aps}
    storm = HandoffStorm(
        attachment=attachment,
        neighbor_map=neighbor_map,
        handoffs=handoffs,
        locality=locality,
        seed=seed,
    )
    for event in storm.generate():
        sim.handoff_member(event.member, event.to_ap)
        sim.run_until_quiescent()
    return sim.handoff_statistics(), len(sim.global_membership())


@pytest.mark.slow
def test_ablation_handoff_fast_path(benchmark, report):
    def run_all():
        return {locality: run_storm(locality) for locality in (0.9, 0.5, 0.1)}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [f"{'locality':>9} {'fast-path hit %':>16} {'intra-ring %':>13} {'roster size':>12}"]
    for locality, (stats, roster) in results.items():
        lines.append(
            f"{locality:>9.1f} {100 * stats['fast_path_ratio']:>16.1f} "
            f"{100 * stats['intra_ring_ratio']:>13.1f} {roster:>12}"
        )
    report("Ablation A5 — fast handoff hit ratio vs movement locality", lines)

    # Membership stays intact regardless of movement pattern.
    assert all(roster == 20 for _, roster in results.values())
    # The neighbour-list fast path pays off exactly when movement is local.
    assert results[0.9][0]["fast_path_ratio"] > results[0.1][0]["fast_path_ratio"]
    assert results[0.9][0]["fast_path_ratio"] > 0.5
