#!/usr/bin/env python
"""Named performance benchmarks with a checked-in baseline (``BENCH_perf``).

Two tiers of named benches:

* **small** — micro/macro benches fast enough for every CI run and for the
  tier-1 perf-regression smoke test (``tests/test_perf_regression.py``):
  ring successor micro, event-engine dispatch micro, delta compile/apply
  micro, a 4k-proxy structural propagation and a 1k-proxy churn matrix cell.
* **full** — the headline measurements: the 10k-proxy churn matrix cell
  (compared against the pre-optimisation reference measured with the same
  methodology; the acceptance bar is a >=3x single-process speedup) and the
  1M-proxy ``large_scale`` propagation (first measured in PR 4; ~90 s and
  ~3 GB RSS on the reference machine).

Every bench is seeded and deterministic in its *work*; only wall time varies.
Timing methodology: ``best_of`` repetitions, default garbage collector state
(cell runners manage GC themselves — see ``repro.workloads.matrix._gc_paused``).

Results are written to ``BENCH_perf.json`` next to this script and compared
against ``perf_baseline.json``: a bench fails its band when it is more than
``tolerance`` times slower than its recorded baseline (generous by default —
absolute seconds are machine-specific; regenerate with ``--update-baseline``
when moving reference machines).  See ``docs/PERF.md``.

Usage::

    PYTHONPATH=src python benchmarks/perf.py --tier small
    PYTHONPATH=src python benchmarks/perf.py --tier full
    PYTHONPATH=src python benchmarks/perf.py --tier all --update-baseline
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

HERE = Path(__file__).resolve().parent
BASELINE_PATH = HERE / "perf_baseline.json"
OUTPUT_PATH = HERE / "BENCH_perf.json"

SMALL = "small"
FULL = "full"


@dataclass
class BenchResult:
    """One bench's measurement: primary seconds, build/memory metrics, extras.

    ``build_seconds`` is the bench's construction phase (0.0 for benches with
    no separate build); ``peak_rss_mb`` is ``resource.ru_maxrss`` of the
    measuring process, which is why the CLI isolates each bench in its own
    subprocess — in-process runs report the interpreter-wide peak instead.
    """

    name: str
    tier: str
    seconds: float
    repeats: int
    build_seconds: float = 0.0
    peak_rss_mb: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "tier": self.tier,
            "seconds": round(self.seconds, 4),
            "build_seconds": round(self.build_seconds, 4),
            "peak_rss_mb": round(self.peak_rss_mb, 1),
            "repeats": self.repeats,
        }
        if self.extra:
            payload["extra"] = {k: round(v, 4) for k, v in sorted(self.extra.items())}
        return payload


def environment_block() -> Dict[str, str]:
    """Interpreter/platform identification, recorded once per report.

    Per-result copies would only repeat it: partial runs merge into the
    existing ``BENCH_perf.json`` on the same machine, and cross-machine
    merges are already meaningless for the timings themselves.
    """
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unavailable"
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy": numpy_version,
    }


def _peak_rss_mb() -> float:
    """Peak RSS of this process in MB (``ru_maxrss`` is KB on Linux)."""
    import resource

    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # bytes on macOS
        return rss / (1024.0 * 1024.0)
    return rss / 1024.0


BenchFn = Callable[[], Tuple[float, Dict[str, float]]]
_REGISTRY: List[Tuple[str, str, Optional[int], BenchFn]] = []


def bench(name: str, tier: str, repeats: Optional[int] = None):
    """Register a bench; ``repeats`` pins a bench-specific repetition count
    (the 1M build+propagate is long enough to be measured once)."""

    def register(fn: BenchFn) -> BenchFn:
        _REGISTRY.append((name, tier, repeats, fn))
        return fn

    return register


def bench_names(tier: Optional[str] = None) -> List[str]:
    return [name for name, t, _r, _fn in _REGISTRY if tier is None or t == tier]


# ----------------------------------------------------------------------
# small tier: micro benches
# ----------------------------------------------------------------------


@bench("ring_successor_10k", SMALL)
def _bench_ring_successor() -> Tuple[float, Dict[str, float]]:
    """100k successor/predecessor lookups on a 10k-member ring.

    Exercises the array-backed position index in
    :class:`repro.core.ring.LogicalRing` (the seed's ``list.index`` scan made
    this O(ring) per lookup).
    """
    from repro.core.identifiers import NodeId
    from repro.core.ring import LogicalRing

    build_start = time.perf_counter()
    members = [NodeId(f"ap-{i:05d}") for i in range(10_000)]
    ring = LogicalRing(ring_id="bench", tier=1, members=list(members))
    build_seconds = time.perf_counter() - build_start
    probes = [members[(i * 37) % len(members)] for i in range(1_000)]
    start = time.perf_counter()
    for _round in range(50):
        for node in probes:
            ring.successor(node)
            ring.predecessor(node)
    elapsed = time.perf_counter() - start
    return elapsed, {"lookups": 100_000.0, "build_seconds": build_seconds}


@bench("engine_dispatch_50k", SMALL)
def _bench_engine_dispatch() -> Tuple[float, Dict[str, float]]:
    """Schedule and dispatch 50k events through the tuple-heap engine."""
    from repro.sim.engine import SimulationEngine

    engine = SimulationEngine()

    def noop(_engine: SimulationEngine) -> None:
        return None

    start = time.perf_counter()
    for i in range(50_000):
        engine.schedule(float(i % 97) * 0.25, noop)
    engine.run()
    elapsed = time.perf_counter() - start
    return elapsed, {"events": float(engine.dispatched_events)}


@bench("delta_compile_apply", SMALL)
def _bench_delta() -> Tuple[float, Dict[str, float]]:
    """Compile a 512-operation batch and apply it to 64 membership views."""
    from repro.core.deltas import MembershipDelta
    from repro.core.identifiers import GroupId, NodeId
    from repro.core.kernel import TokenRoundKernel
    from repro.core.hierarchy import HierarchyBuilder
    from repro.core.membership import MembershipView

    build_start = time.perf_counter()
    hierarchy = HierarchyBuilder("bench").regular(ring_size=4, height=2)
    kernel = TokenRoundKernel(hierarchy)
    build_seconds = time.perf_counter() - build_start
    aps = hierarchy.access_proxies()
    ops = [
        kernel.make_join_op(aps[i % len(aps)], f"member-{i:04d}") for i in range(512)
    ]
    views = [
        MembershipView("bench", NodeId(f"n-{i:02d}"), GroupId("bench"))
        for i in range(64)
    ]
    start = time.perf_counter()
    delta = MembershipDelta.from_operations(ops)
    for view in views:
        view.apply_delta(delta, 0.0)
    elapsed = time.perf_counter() - start
    assert all(len(view) == 512 for view in views)
    return elapsed, {"operations": 512.0, "views": 64.0, "build_seconds": build_seconds}


@bench("kernel_propagate_4k", SMALL)
def _bench_kernel_4k() -> Tuple[float, Dict[str, float]]:
    """Structural one-round propagation of 32 joins at r=8, h=4 (4096 APs)."""
    from repro.core.config import ProtocolConfig
    from repro.core.hierarchy import HierarchyBuilder
    from repro.core.one_round import OneRoundEngine

    build_start = time.perf_counter()
    hierarchy = HierarchyBuilder("bench").regular(ring_size=8, height=4)
    engine = OneRoundEngine(hierarchy, config=ProtocolConfig(aggregation_delay=0.0))
    build_seconds = time.perf_counter() - build_start
    aps = hierarchy.access_proxies()
    stride = max(1, len(aps) // 32)
    for index in range(32):
        engine.member_join(aps[(index * stride) % len(aps)], f"bench-{index:04d}")
    start = time.perf_counter()
    report = engine.propagate()
    elapsed = time.perf_counter() - start
    return elapsed, {
        "rounds": float(report.round_count),
        "hop_count": float(report.hop_count),
        "build_seconds": build_seconds,
    }


@bench("kernel_propagate_4k_columnar", SMALL)
def _bench_kernel_4k_columnar() -> Tuple[float, Dict[str, float]]:
    """The ``kernel_propagate_4k`` workload on the columnar backend.

    Same joins, same rounds, bit-identical protocol state — the pair of
    benches keeps the backends' relative cost visible at a size where the
    object kernel is still comfortable.
    """
    from repro.core.config import ProtocolConfig
    from repro.core.hierarchy import HierarchyBuilder
    from repro.core.one_round import OneRoundEngine

    build_start = time.perf_counter()
    hierarchy = HierarchyBuilder("bench").regular(ring_size=8, height=4)
    engine = OneRoundEngine(
        hierarchy, config=ProtocolConfig(aggregation_delay=0.0), backend="columnar"
    )
    build_seconds = time.perf_counter() - build_start
    aps = hierarchy.access_proxies()
    stride = max(1, len(aps) // 32)
    for index in range(32):
        engine.member_join(aps[(index * stride) % len(aps)], f"bench-{index:04d}")
    start = time.perf_counter()
    report = engine.propagate()
    elapsed = time.perf_counter() - start
    return elapsed, {
        "rounds": float(report.round_count),
        "hop_count": float(report.hop_count),
        "build_seconds": build_seconds,
    }


@bench("matrix_churn_1k", SMALL)
def _bench_matrix_1k() -> Tuple[float, Dict[str, float]]:
    """One 1k-proxy churn cell through the event-driven harness."""
    from repro.workloads.matrix import MatrixCell, run_matrix_cell

    cell = MatrixCell(scenario="churn", num_proxies=1_000, loss=0.0, seed=0)
    start = time.perf_counter()
    result = run_matrix_cell(cell, events=16)
    elapsed = time.perf_counter() - start
    assert result.converged and result.ring_agreement
    return elapsed, {"dispatched_events": float(result.dispatched_events)}


@bench("matrix_churn_1k_columnar", SMALL)
def _bench_matrix_1k_columnar() -> Tuple[float, Dict[str, float]]:
    """The 1k churn cell with the columnar kernel behind the harness."""
    from repro.workloads.matrix import MatrixCell, run_matrix_cell

    cell = MatrixCell(
        scenario="churn", num_proxies=1_000, loss=0.0, seed=0, backend="columnar"
    )
    start = time.perf_counter()
    result = run_matrix_cell(cell, events=16)
    elapsed = time.perf_counter() - start
    assert result.converged and result.ring_agreement
    return elapsed, {"dispatched_events": float(result.dispatched_events)}


def _serving_extras(result: Dict[str, object], prefix: str = "") -> Dict[str, float]:
    """Flatten a serving-cell result into bench extras (qps, tails, cache)."""
    extras: Dict[str, float] = {
        f"{prefix}qps": float(result["overall_qps"]),
        f"{prefix}queries": float(result["total_queries"]),
    }
    for name, stats in result["schemes"].items():  # type: ignore[union-attr]
        key = name.lower()
        extras[f"{prefix}{key}_qps"] = float(stats["qps"])
        extras[f"{prefix}{key}_p50_ms"] = float(stats["p50_ms"])
        extras[f"{prefix}{key}_p99_ms"] = float(stats["p99_ms"])
    snapshots = result.get("snapshots")
    if snapshots:
        extras[f"{prefix}snapshot_captures"] = float(snapshots["captures"])
        extras[f"{prefix}snapshot_hits"] = float(snapshots["hits"])
        extras[f"{prefix}snapshot_invalidations"] = float(snapshots["invalidations"])
    return extras


@bench("serving_queries_1k", SMALL)
def _bench_serving_1k() -> Tuple[float, Dict[str, float]]:
    """Batched serving over the 1k-proxy churn cell (columnar backend).

    The primary metric is total query wall time (the latency-under-churn
    measurement); qps and per-scheme p50/p99 plus the snapshot cache
    counters ride along as extras.
    """
    from repro.workloads.query_load import QueryLoadConfig, run_serving_cell

    result = run_serving_cell(
        num_proxies=1_000,
        mode="batched",
        backend="columnar",
        events=16,
        config=QueryLoadConfig(mode="batched", batch_size=48, batches=24, interval=1.0),
    )
    extras = _serving_extras(result)
    extras["build_seconds"] = float(result["build_seconds"])
    return float(result["total_query_seconds"]), extras


# ----------------------------------------------------------------------
# full tier: the headline macro benches
# ----------------------------------------------------------------------


@bench("serving_churn_100k", FULL, repeats=1)
def _bench_serving_100k() -> Tuple[float, Dict[str, float]]:
    """Queries under churn at 100k proxies: batched columnar vs object path.

    Runs the same seeded churn cell twice — once served by the batched
    columnar front-end, once by the per-query object reference — and
    reports the throughput ratio as ``speedup_vs_object`` (the PR's
    acceptance bar is >= 10x).  The object pass issues far fewer queries
    (qps comes from per-query latencies, not query count), which is what
    keeps a per-query BMS fan-out over 10k rings affordable at all.
    """
    from repro.workloads.query_load import QueryLoadConfig, run_serving_cell

    batched = run_serving_cell(
        num_proxies=100_000,
        mode="batched",
        backend="columnar",
        events=24,
        config=QueryLoadConfig(mode="batched", batch_size=24, batches=8, interval=2.0),
    )
    reference = run_serving_cell(
        num_proxies=100_000,
        mode="object",
        backend="object",
        events=24,
        config=QueryLoadConfig(mode="object", batch_size=6, batches=2, interval=2.0),
    )
    extras = _serving_extras(batched)
    extras.update(_serving_extras(reference, prefix="object_"))
    extras["build_seconds"] = float(batched["build_seconds"]) + float(
        reference["build_seconds"]
    )
    object_qps = float(reference["overall_qps"])
    if object_qps > 0:
        extras["speedup_vs_object"] = float(batched["overall_qps"]) / object_qps
    return float(batched["total_query_seconds"]), extras


@bench("matrix_churn_10k", FULL)
def _bench_matrix_10k() -> Tuple[float, Dict[str, float]]:
    """The 10k-proxy churn cell — the PR 4 optimisation target."""
    from repro.workloads.matrix import MatrixCell, run_matrix_cell

    cell = MatrixCell(scenario="churn", num_proxies=10_000, loss=0.0, seed=0)
    start = time.perf_counter()
    result = run_matrix_cell(cell, events=24)
    elapsed = time.perf_counter() - start
    assert result.converged and result.ring_agreement
    return elapsed, {"dispatched_events": float(result.dispatched_events)}


def _large_scale_bench(height: int) -> Tuple[float, Dict[str, float]]:
    """r=10 structural propagation of a 4-join burst on the columnar backend.

    The dirty-ring pending set (PR 4) made million-proxy sweeps tractable;
    the columnar backend's proven-no-op fast path took the per-round cost
    off the CPython object graph entirely (dense index arithmetic instead
    of identifier-keyed dict probes, see :mod:`repro.core.columnar`).
    ``build_seconds`` measures the bulk construction path (hierarchy +
    entity states + kernel wiring + columnar store) under the library's own
    :func:`repro.core.hierarchy.paused_gc` — the way every at-scale caller
    (matrix cells included) runs construction; propagation manages the
    collector itself (the columnar propagate pauses it, exactly as callers
    experience it).
    """
    from repro.core.config import ProtocolConfig
    from repro.core.hierarchy import HierarchyBuilder, paused_gc
    from repro.core.one_round import OneRoundEngine

    build_start = time.perf_counter()
    with paused_gc():
        hierarchy = HierarchyBuilder("bench").regular(ring_size=10, height=height)
        engine = OneRoundEngine(
            hierarchy,
            config=ProtocolConfig(aggregation_delay=0.0),
            backend="columnar",
        )
    build_seconds = time.perf_counter() - build_start
    aps = hierarchy.access_proxies()
    for index in range(4):
        engine.member_join(aps[index * (len(aps) // 4)], f"bench-{index:03d}")
    start = time.perf_counter()
    report = engine.propagate()
    elapsed = time.perf_counter() - start
    return elapsed, {
        "build_seconds": build_seconds,
        "access_proxies": float(len(aps)),
        "rings": float(hierarchy.total_rings),
        "rounds": float(report.round_count),
        "hop_count": float(report.hop_count),
    }


@bench("large_scale_1m", FULL, repeats=1)
def _bench_large_scale_1m() -> Tuple[float, Dict[str, float]]:
    """1M-proxy (r=10, h=6) propagation; columnar backend since PR 6."""
    return _large_scale_bench(height=6)


@bench("large_scale_10m", FULL, repeats=1)
def _bench_large_scale_10m() -> Tuple[float, Dict[str, float]]:
    """10M-proxy (r=10, h=7) propagation — the first 10M-scale bench.

    Only feasible on the columnar backend (the object kernel's per-round
    object churn puts this past the ten-minute mark); runs in the nightly
    slow tier, never in PR CI.
    """
    return _large_scale_bench(height=7)


# ----------------------------------------------------------------------
# measurement, baseline comparison, reporting
# ----------------------------------------------------------------------


def run_one(name: str, repeats: int = 3, measure_rss: bool = True) -> BenchResult:
    """Run a single named bench in-process (best-of-``repeats``).

    ``build_seconds`` is lifted out of the bench's extras (best-of across
    repeats, like the primary metric).  ``peak_rss_mb`` is only meaningful
    when this process ran just this bench (the ``--run-one`` isolation
    worker); in-process multi-bench runs pass ``measure_rss=False`` and
    report 0, which the band check treats as "not measured".
    """
    for bench_name, bench_tier, pinned_repeats, fn in _REGISTRY:
        if bench_name != name:
            continue
        bench_repeats = pinned_repeats if pinned_repeats is not None else repeats
        best: Optional[float] = None
        best_build: Optional[float] = None
        extra: Dict[str, float] = {}
        for _attempt in range(bench_repeats):
            seconds, extra = fn()
            extra = dict(extra)
            build = extra.pop("build_seconds", 0.0)
            best = seconds if best is None or seconds < best else best
            best_build = build if best_build is None or build < best_build else best_build
        return BenchResult(
            name=name, tier=bench_tier, seconds=float(best), repeats=bench_repeats,
            build_seconds=float(best_build),
            peak_rss_mb=_peak_rss_mb() if measure_rss else 0.0,
            extra=extra,
        )
    raise KeyError(f"unknown bench {name!r} (have {bench_names()})")


def run_benches(
    tier: str,
    repeats: int = 3,
    progress: bool = True,
    isolate: bool = False,
    only: Optional[List[str]] = None,
) -> List[BenchResult]:
    """Run the selected tier(s); each bench reports its best-of-``repeats``
    (benches registered with a pinned repeat count keep it).

    ``isolate=True`` runs every bench in a fresh subprocess — heap growth
    and allocator fragmentation left behind by one bench measurably inflate
    the next (~10% on the 10k churn cell), and it is what makes
    ``peak_rss_mb`` a per-bench measurement — so the CLI isolates by
    default; the in-process path stays for the perf-regression smoke test,
    whose bands absorb the difference.

    ``only`` restricts the run to the named benches (any tier), so a single
    bench — e.g. ``large_scale_1m`` — can be re-measured or re-baselined
    without paying for the whole suite.
    """
    if only:
        known = set(bench_names())
        unknown = [n for n in only if n not in known]
        if unknown:
            raise KeyError(f"unknown bench(es) {unknown} (have {sorted(known)})")
    results: List[BenchResult] = []
    for name, bench_tier, _pinned, _fn in _REGISTRY:
        if only:
            if name not in only:
                continue
        elif tier != "all" and bench_tier != tier:
            continue
        if isolate:
            result = _run_isolated(name, repeats)
        else:
            result = run_one(name, repeats, measure_rss=False)
        results.append(result)
        if progress:
            print(
                f"{result.name:<24} [{result.tier:>5}] {result.seconds:9.3f}s  "
                f"build {result.build_seconds:7.3f}s  rss {result.peak_rss_mb:7.1f}MB  "
                f"(best of {result.repeats})",
                flush=True,
            )
    return results


def _run_isolated(name: str, repeats: int) -> BenchResult:
    """Run one bench in a fresh interpreter and parse its JSON result."""
    import subprocess

    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--run-one", name,
         "--repeat", str(repeats)],
        capture_output=True,
        text=True,
        check=True,
    )
    payload = json.loads(proc.stdout.strip().splitlines()[-1])
    return BenchResult(
        name=payload["name"],
        tier=payload["tier"],
        seconds=float(payload["seconds"]),
        repeats=int(payload["repeats"]),
        build_seconds=float(payload.get("build_seconds", 0.0)),
        peak_rss_mb=float(payload.get("peak_rss_mb", 0.0)),
        extra={k: float(v) for k, v in payload.get("extra", {}).items()},
    )


def load_baseline(path: Path = BASELINE_PATH) -> Dict[str, object]:
    if not path.exists():
        return {"benches": {}, "reference": {}}
    return json.loads(path.read_text())


def check_against_baseline(
    results: List[BenchResult], baseline: Dict[str, object]
) -> List[str]:
    """Violation strings for benches outside their tolerance bands (empty = ok).

    Three independent bands per bench, each optional in the baseline entry:
    ``seconds`` × ``tolerance``, ``build_seconds`` × ``build_tolerance`` and
    ``peak_rss_mb`` × ``rss_tolerance`` (memory needs the tightest band —
    RSS is far less machine-sensitive than wall time).
    """
    bands: Dict[str, Dict[str, float]] = baseline.get("benches", {})  # type: ignore[assignment]
    violations: List[str] = []
    for result in results:
        band = bands.get(result.name)
        if band is None:
            continue
        limit = float(band["seconds"]) * float(band.get("tolerance", 3.0))
        if result.seconds > limit:
            violations.append(
                f"{result.name}: {result.seconds:.3f}s exceeds band "
                f"{band['seconds']}s x {band.get('tolerance', 3.0)} = {limit:.3f}s"
            )
        build_band = band.get("build_seconds")
        if build_band is not None:
            # Absolute floor: millisecond-scale build phases are scheduler
            # noise, not signal — a multiplicative band on 7 ms flakes under
            # any load.  Only regressions past max(band, 50 ms) can trip.
            build_limit = max(
                float(build_band) * float(band.get("build_tolerance", 3.0)), 0.05
            )
            if result.build_seconds > build_limit:
                violations.append(
                    f"{result.name}: build {result.build_seconds:.3f}s exceeds band "
                    f"{build_band}s x {band.get('build_tolerance', 3.0)} = {build_limit:.3f}s"
                )
        rss_band = band.get("peak_rss_mb")
        if rss_band is not None and result.peak_rss_mb > 0:
            rss_limit = float(rss_band) * float(band.get("rss_tolerance", 1.5))
            if result.peak_rss_mb > rss_limit:
                violations.append(
                    f"{result.name}: peak RSS {result.peak_rss_mb:.1f}MB exceeds band "
                    f"{rss_band}MB x {band.get('rss_tolerance', 1.5)} = {rss_limit:.1f}MB"
                )
        # Acceptance floors on extras (e.g. the serving layer's 10x
        # speedup-vs-object bar): unlike the bands above these are absolute
        # minima, not re-pinned by --update-baseline.
        for extra_key, floor in band.get("extra_min", {}).items():
            measured = result.extra.get(extra_key)
            if measured is None:
                violations.append(
                    f"{result.name}: extra {extra_key!r} not reported "
                    f"(floor {floor} required)"
                )
            elif float(measured) < float(floor):
                violations.append(
                    f"{result.name}: {extra_key} {float(measured):.2f} below "
                    f"required floor {floor}"
                )
    return violations


def speedup_summary(
    results: List[BenchResult], baseline: Dict[str, object]
) -> Dict[str, float]:
    """Headline speedups vs the recorded pre-optimisation reference."""
    reference: Dict[str, float] = baseline.get("reference", {})  # type: ignore[assignment]
    summary: Dict[str, float] = {}
    seed_10k = reference.get("matrix_churn_10k_seed_seconds")
    object_1m = reference.get("large_scale_1m_object_seconds")
    for result in results:
        if result.name == "matrix_churn_10k" and seed_10k:
            summary["matrix_churn_10k_speedup_vs_seed"] = round(
                float(seed_10k) / result.seconds, 2
            )
        if result.name == "large_scale_1m" and object_1m:
            summary["large_scale_1m_speedup_vs_object"] = round(
                float(object_1m) / result.seconds, 2
            )
        if result.name == "serving_churn_100k":
            speedup = result.extra.get("speedup_vs_object")
            if speedup:
                summary["serving_100k_speedup_vs_object"] = round(float(speedup), 2)
    return summary


def write_report(
    results: List[BenchResult],
    baseline: Dict[str, object],
    violations: List[str],
    out_path: Path = OUTPUT_PATH,
) -> Dict[str, object]:
    """Write ``BENCH_perf.json``, merging over an existing report.

    Partial runs (``--tier small``, ``--only <bench>``) update just their own
    entries so the archived artifact keeps the latest measurement of every
    bench; ``violations``/``ok`` describe the benches of *this* run.
    """
    merged: Dict[str, object] = {}
    merged_speedups: Dict[str, float] = {}
    if out_path.exists():
        try:
            previous = json.loads(out_path.read_text())
            merged = dict(previous.get("results", {}))
            merged_speedups = dict(previous.get("speedups", {}))
        except (json.JSONDecodeError, AttributeError):
            merged, merged_speedups = {}, {}
    # Drop entries for benches that no longer exist, then merge this run.
    known = set(bench_names())
    merged = {name: entry for name, entry in merged.items() if name in known}
    merged.update({r.name: r.to_json() for r in results})
    merged_speedups.update(speedup_summary(results, baseline))
    payload: Dict[str, object] = {
        "benchmark": "named perf benches (see docs/PERF.md)",
        "environment": environment_block(),
        "results": merged,
        "speedups": merged_speedups,
        "baseline": {
            "path": str(BASELINE_PATH.name),
            "violations": violations,
            "ok": not violations,
        },
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def update_baseline(
    results: List[BenchResult],
    baseline: Dict[str, object],
    path: Path = BASELINE_PATH,
) -> None:
    """Re-pin the bands to the current measurements (tolerances preserved).

    Only the benches that actually ran are re-pinned (so ``--only <bench>
    --update-baseline`` touches one entry); build/memory bands are recorded
    whenever the bench reported them.
    """
    bands: Dict[str, Dict[str, object]] = dict(baseline.get("benches", {}))  # type: ignore[arg-type]
    for result in results:
        previous = bands.get(result.name, {})
        band: Dict[str, object] = {
            "seconds": round(result.seconds, 4),
            "tolerance": previous.get("tolerance", 3.0),
        }
        if result.build_seconds > 0:
            band["build_seconds"] = round(result.build_seconds, 4)
            band["build_tolerance"] = previous.get("build_tolerance", 3.0)
        elif "build_seconds" in previous:
            # This run had no build phase to measure; keep the recorded band
            # rather than silently deleting the protection.
            band["build_seconds"] = previous["build_seconds"]
            band["build_tolerance"] = previous.get("build_tolerance", 3.0)
        if result.peak_rss_mb > 0:
            band["peak_rss_mb"] = round(result.peak_rss_mb, 1)
            band["rss_tolerance"] = previous.get("rss_tolerance", 1.5)
        elif "peak_rss_mb" in previous:
            # peak_rss_mb=0 means "not measured" (in-process --no-isolate
            # run), not "no memory": preserve the existing memory band.
            band["peak_rss_mb"] = previous["peak_rss_mb"]
            band["rss_tolerance"] = previous.get("rss_tolerance", 1.5)
        if "extra_min" in previous:
            # Acceptance floors are absolute bars, not measurements — carry
            # them over untouched rather than re-pinning (or dropping) them.
            band["extra_min"] = previous["extra_min"]
        bands[result.name] = band
    baseline = dict(baseline)
    baseline["benches"] = bands
    # Record the environment the bands were (re-)pinned on; partial re-pins
    # overwrite it deliberately — the freshest pin defines the reference.
    baseline["environment"] = environment_block()
    path.write_text(json.dumps(baseline, indent=2) + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tier", choices=[SMALL, FULL, "all"], default=SMALL)
    parser.add_argument("--repeat", type=int, default=3, help="best-of repetitions")
    parser.add_argument("--out", type=Path, default=OUTPUT_PATH)
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="re-pin perf_baseline.json bands to the current measurements",
    )
    parser.add_argument(
        "--no-isolate",
        action="store_true",
        help="run benches in-process instead of one fresh subprocess each",
    )
    parser.add_argument(
        "--run-one",
        metavar="NAME",
        default=None,
        help="run a single bench and print its JSON result (isolation worker)",
    )
    parser.add_argument(
        "--only",
        metavar="NAME",
        action="append",
        default=None,
        help="run only the named bench (repeatable; overrides --tier), e.g. "
        "--only large_scale_1m --update-baseline to re-pin one band",
    )
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error(f"--repeat must be >= 1, got {args.repeat}")

    if args.run_one:
        result = run_one(args.run_one, repeats=args.repeat)
        print(json.dumps(dict(result.to_json(), name=result.name)))
        return 0

    baseline = load_baseline()
    results = run_benches(
        args.tier, repeats=args.repeat, isolate=not args.no_isolate, only=args.only
    )
    violations = check_against_baseline(results, baseline)
    payload = write_report(results, baseline, violations, out_path=args.out)
    print(f"wrote {args.out}")
    for name, value in payload.get("speedups", {}).items():  # type: ignore[union-attr]
        print(f"{name}: {value}x")
    if args.update_baseline:
        update_baseline(results, baseline)
        print(f"updated {BASELINE_PATH}")
        return 0
    if violations:
        print("PERF REGRESSION:", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
