"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artefact of the paper's evaluation (a table,
a figure or a claim) and prints the regenerated rows next to the published
values, so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
reproduction report backing EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def print_report(title: str, lines) -> None:
    """Uniform report block printed by each benchmark."""
    bar = "=" * max(len(title), 20)
    print(f"\n{bar}\n{title}\n{bar}")
    for line in lines:
        print(line)


@pytest.fixture
def report():
    return print_report
