"""Ablation A3 — ring size r: propagation cost vs reliability trade-off.

For a (roughly) fixed number of access proxies, larger rings mean fewer tiers
and fewer inter-ring messages but a higher chance that a single ring collects
two simultaneous faults.  The paper's conclusion notes small rings keep
propagation delay low; this ablation quantifies both sides.
"""

from __future__ import annotations

from repro.analysis.reliability import hierarchy_function_well_probability
from repro.analysis.scalability import hcn_ring, ring_access_proxy_count


SWEEP = [
    # (ring_size, height) chosen so n stays in the same order of magnitude.
    (2, 7),   # n = 128
    (4, 4),   # n = 256
    (5, 3),   # n = 125
    (11, 2),  # n = 121
]
FAULT_PROBABILITY = 0.005


def sweep_rows():
    rows = []
    for ring_size, height in SWEEP:
        rows.append(
            {
                "r": ring_size,
                "h": height,
                "n": ring_access_proxy_count(height, ring_size),
                "hcn": hcn_ring(height, ring_size),
                "fw": hierarchy_function_well_probability(height, ring_size, FAULT_PROBABILITY, 1),
            }
        )
    return rows


def test_ablation_ring_size_tradeoff(benchmark, report):
    rows = benchmark(sweep_rows)
    lines = [f"{'r':>4} {'h':>3} {'n':>5} {'HCN_Ring':>9} {'fw(%) @f=0.5%':>14}"]
    for row in rows:
        lines.append(
            f"{row['r']:>4} {row['h']:>3} {row['n']:>5} {row['hcn']:>9} {100 * row['fw']:>14.3f}"
        )
    report("Ablation A3 — ring size sweep at comparable n", lines)

    # Propagation cost per change grows as rings shrink (more rings to cover) ...
    hcn_by_r = {row["r"]: row["hcn"] for row in rows}
    assert hcn_by_r[2] > hcn_by_r[5] > hcn_by_r[11]
    # ... while the smallest rings are also the most robust per-ring, so the
    # Function-Well probability peaks at small r for the same fault rate.
    fw_by_r = {row["r"]: row["fw"] for row in rows}
    assert fw_by_r[2] > fw_by_r[11]
