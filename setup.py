"""Legacy setup shim.

The offline environment this reproduction targets has no ``wheel`` package, so
``pip install -e . --no-use-pep517 --no-build-isolation`` (which goes through
``setup.py develop``) is the supported editable-install path.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
