#!/usr/bin/env python
"""Reliability study: Function-Well probability, analytics vs fault injection.

Reproduces the reasoning behind Table II of the paper at laptop scale:

1. evaluates the closed-form Function-Well probability of the ring-based
   hierarchy (formulas 7 and 8) over a sweep of node fault probabilities,
2. validates it with Monte-Carlo fault injection over a materialised
   hierarchy (the same partition counting the protocol itself uses), and
3. compares against the tree-based hierarchy with representatives — the
   paper's qualitative claim that the ring hierarchy is the more reliable one.

Run with::

    python examples/reliability_study.py
"""

from __future__ import annotations

from repro.analysis.montecarlo import (
    simulate_hierarchy_function_well,
    simulate_tree_function_well,
)
from repro.analysis.reliability import (
    hierarchy_function_well_probability,
    tree_function_well_probability,
)


def main() -> None:
    height, ring_size = 3, 5  # n = 125 access proxies, the paper's left block
    fault_probabilities = [0.001, 0.005, 0.02]
    trials = 1500

    print(f"Ring-based hierarchy, h={height}, r={ring_size} (n={ring_size**height} proxies)")
    print(f"{'f (%)':>7} {'k':>3} {'analytical':>11} {'monte-carlo':>12} {'tree (analytical)':>18}")
    for f in fault_probabilities:
        for k in (1, 3):
            analytical = hierarchy_function_well_probability(height, ring_size, f, k)
            mc = simulate_hierarchy_function_well(
                height, ring_size, f, max_partitions=k, trials=trials, seed=3,
                analytical=analytical,
            )
            tree = tree_function_well_probability(height + 1, ring_size, f, k)
            print(
                f"{100 * f:>7.1f} {k:>3} {100 * analytical:>10.3f}% {100 * mc.estimate:>11.3f}% "
                f"{100 * tree:>17.3f}%"
            )

    print("\nTree-based hierarchy with representatives (same n), Monte-Carlo check at f=2%:")
    tree_mc = simulate_tree_function_well(
        height=height + 1, branching=ring_size, fault_probability=0.02,
        max_partitions=1, trials=trials, seed=3,
    )
    ring_mc = simulate_hierarchy_function_well(
        height, ring_size, 0.02, max_partitions=1, trials=trials, seed=3,
    )
    print(f"  ring hierarchy Function-Well : {100 * ring_mc.estimate:6.2f}%")
    print(f"  tree hierarchy Function-Well : {100 * tree_mc.estimate:6.2f}%")
    print("\nThe ring hierarchy tolerates any single fault per ring, so it stays "
          "Function-Well far more often than the representative tree — the paper's "
          "Section 5.2 claim.")


if __name__ == "__main__":
    main()
