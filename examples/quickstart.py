#!/usr/bin/env python
"""Quickstart: build an RGB hierarchy, join members, watch changes propagate.

Run with::

    python examples/quickstart.py

The script builds a 25-access-proxy hierarchy (rings of 5), joins a handful of
mobile hosts, performs a handoff and a voluntary leave, and prints the global
membership view maintained at the topmost ring leader after each step — the
end-to-end path of the One-Round Token Passing Membership algorithm
(paper Section 4.3, Figure 3).
"""

from __future__ import annotations

from repro import RGBSimulation, SimulationConfig
from repro.core.query import MembershipScheme
from repro.topology.rendering import render_hierarchy


def main() -> None:
    config = SimulationConfig(num_aps=25, ring_size=5, hosts_per_ap=0, seed=7, trace_enabled=True)
    sim = RGBSimulation(config).build()

    print("=== The ring-based hierarchy (Figure 2) ===")
    assert sim.hierarchy is not None
    print(render_hierarchy(sim.hierarchy, max_rings_per_tier=3))
    print()

    aps = sim.access_proxies()
    print(f"Participating access proxies: {len(aps)} (rings of {config.ring_size})")
    print()

    print("=== Members join at three different proxies ===")
    alice = sim.join_member(ap_id=aps[0], guid="alice")
    bob = sim.join_member(ap_id=aps[7], guid="bob")
    carol = sim.join_member(ap_id=aps[13], guid="carol")
    report = sim.run_until_quiescent()
    print(f"propagation used {report.hop_count} message hops over {report.round_count} token rounds")
    print(f"global membership: {sim.global_membership().guids()}")
    print()

    print("=== Alice hands off to a neighbouring cell ===")
    record = sim.handoff_member("alice", aps[1])
    sim.run_until_quiescent()
    print(f"fast handoff path used: {record.fast_path} (neighbour list hit)")
    located = sim.query(MembershipScheme.TMS)
    print(f"TMS query answered from tier {located.answered_by_tier} "
          f"in {located.message_hops} hops: {located.guids}")
    print()

    print("=== Bob leaves voluntarily ===")
    sim.leave_member("bob")
    sim.run_until_quiescent()
    print(f"global membership: {sim.global_membership().guids()}")
    print()

    print("=== An access proxy crashes ===")
    victim = aps[13]  # carol's proxy
    sim.crash_entity(victim)
    sim.join_member(ap_id=aps[14], guid="dave")  # traffic triggers detection + repair
    sim.run_until_quiescent()
    print(f"crashed {victim}; carol (attached to it) is reported failed")
    print(f"global membership: {sim.global_membership().guids()}")
    print(f"hierarchy partitions after repair: {sim.partition_report().count}")
    print()

    events = sim.membership_events()
    print(f"=== {len(events)} membership events observed at the topmost leader ===")
    for event in events:
        member = event.member.guid if event.member is not None else "?"
        print(f"  t={event.time:8.2f}  {event.event_type.value:<8} {member}")

    del alice, bob, carol


if __name__ == "__main__":
    main()
