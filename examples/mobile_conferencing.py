#!/usr/bin/env python
"""Mobile video conferencing: the paper's motivating application class.

A conference with mobile participants (laptops, PDAs, phones) spread over the
wireless access networks of the 4-tier architecture.  Participants move
between cells during the call (a handoff storm with high locality), and the
conferencing application keeps querying the membership service to render the
roster.

Run with::

    python examples/mobile_conferencing.py
"""

from __future__ import annotations

from repro.core.config import SimulationConfig
from repro.core.query import MembershipScheme
from repro.core.simulation import RGBSimulation
from repro.workloads.handoffs import HandoffStorm
from repro.workloads.queries import QueryWorkload


def main() -> None:
    sim = RGBSimulation(
        SimulationConfig(num_aps=50, ring_size=5, hosts_per_ap=0, seed=11)
    ).build()
    aps = sim.access_proxies()

    # 40 participants join the conference, spread over the access proxies.
    attachment = {}
    for index in range(40):
        ap = aps[(index * 3) % len(aps)]
        member = sim.join_member(ap_id=ap, guid=f"participant-{index:03d}")
        attachment[str(member.guid)] = ap
    sim.run_until_quiescent()
    print(f"conference started with {len(sim.global_membership())} participants")

    # Participants move between cells: 80% of handoffs stay within the
    # neighbouring cells of the same access-proxy ring.
    neighbor_map = {
        ap: [str(n) for n in sim.ring_of(ap).members if str(n) != ap] for ap in aps
    }
    storm = HandoffStorm(
        attachment=attachment,
        neighbor_map=neighbor_map,
        handoffs=120,
        locality=0.8,
        duration=600.0,
        seed=11,
    )
    events = storm.generate()
    for event in events:
        sim.handoff_member(event.member, event.to_ap)
        sim.run_until_quiescent()
    stats = sim.handoff_statistics()
    print(f"handoffs processed          : {stats['handoffs']:.0f}")
    print(f"fast-handoff hit ratio      : {stats['fast_path_ratio']:.1%} "
          f"(neighbour member list already knew the participant)")
    print(f"intra-ring handoff ratio    : {stats['intra_ring_ratio']:.1%}")
    print(f"roster size after the storm : {len(sim.global_membership())}")

    # The application renders the roster with different maintenance schemes.
    workload = QueryWorkload(entry_points=aps, queries=30, duration=60.0, seed=11)
    aggregates = QueryWorkload.replay(sim.protocol, workload.generate())
    print("\nmembership query cost by scheme (mean logical message hops per query):")
    for scheme in MembershipScheme:
        bucket = aggregates.get(scheme.value)
        if bucket is None:
            continue
        print(
            f"  {scheme.value:<12} {bucket['mean_hops']:8.1f} hops  "
            f"({bucket['mean_members']:.0f} members returned)"
        )
    print("\nTMS answers from the topmost ring in a couple of hops; BMS pays a "
          "fan-out to every access-proxy ring leader — the trade-off of Section 4.4.")


if __name__ == "__main__":
    main()
