#!/usr/bin/env python
"""Churn + entity failures on the message-passing engine.

Runs the RGB protocol as an actual distributed system over the discrete-event
transport: membership changes are real messages subject to latency, failure
detection is driven by token acknowledgement timeouts, and crashed access
proxies are excluded from their rings by local repair.

Run with::

    python examples/churn_and_failures.py
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig, SimulationConfig
from repro.core.simulation import RGBSimulation
from repro.workloads.churn import ChurnKind, ChurnWorkload


def main() -> None:
    config = SimulationConfig(
        num_aps=25,
        ring_size=5,
        hosts_per_ap=0,
        seed=23,
        engine_mode="event",
        protocol=ProtocolConfig(
            aggregation_delay=2.0, token_timeout=60.0, heartbeat_interval=500.0
        ),
    )
    sim = RGBSimulation(config).build()
    aps = sim.access_proxies()

    # Phase 1: churn — members continuously join and leave.
    workload = ChurnWorkload(ap_ids=aps, join_rate=0.3, leave_rate=0.002, horizon=300.0, seed=23)
    events = workload.generate()
    joined = {}
    for event in events:
        if event.kind is ChurnKind.JOIN:
            sim.join_member(ap_id=event.ap, guid=event.member)
            joined[event.member] = event.ap
        elif event.member in joined:
            sim.leave_member(event.member)
            joined.pop(event.member)
    sim.run_until_quiescent()
    print(f"churn phase: {len(events)} events, "
          f"{len(sim.global_membership())} members in the global view "
          f"(expected {len(joined)})")

    # Phase 2: crash two access proxies; their members must be reported failed.
    victims = [ap for ap in aps if joined and any(v == ap for v in joined.values())][:2]
    lost = [m for m, ap in joined.items() if ap in victims]
    for victim in victims:
        sim.crash_entity(victim)
    # New traffic in the affected rings triggers token-timeout detection
    # (heartbeat rounds would also catch it, just more slowly).
    for index, victim in enumerate(victims):
        ring = sim.ring_of(victim)
        survivor = next(str(n) for n in ring.members if str(n) not in victims)
        sim.join_member(ap_id=survivor, guid=f"post-crash-{index}")
    sim.run_until_quiescent()
    sim.run_until_quiescent()  # a second heartbeat window flushes repair reports

    view = sim.global_membership()
    still_listed = [m for m in lost if m in view]
    print(f"crashed {len(victims)} access proxies carrying {len(lost)} members; "
          f"{len(still_listed)} still listed after detection and repair")
    print(f"final membership size: {len(view)}")
    print(f"hierarchy partitions after repair: {sim.partition_report().count}")

    counters = sim.metrics.counters
    interesting = [
        "protocol.rounds_completed",
        "protocol.token_hops",
        "protocol.token_retransmissions",
        "protocol.ring_repairs",
        "transport.sent",
        "transport.dropped",
    ]
    print("\nprotocol counters:")
    for name in interesting:
        counter = counters.get(name)
        if counter is not None:
            print(f"  {name:<32} {counter.value}")


if __name__ == "__main__":
    main()
