#!/usr/bin/env python
"""Tour of the 4-tier mobile Internet architecture and the ring hierarchy.

Regenerates the structural content of the paper's Figure 1 (the 4-tier
integrated network architecture) and Figure 2 (the ring-based hierarchy for
group membership management) from the topology generator and the hierarchy
builder, and prints the scalability picture for growing deployments.

Run with::

    python examples/topology_tour.py
"""

from __future__ import annotations

from repro.analysis.scalability import hcn_ring, hcn_tree
from repro.core.hierarchy import HierarchyBuilder
from repro.sim.rng import RandomStreams
from repro.topology.architecture import TopologySpec
from repro.topology.generator import TopologyGenerator
from repro.topology.rendering import render_architecture, render_hierarchy


def main() -> None:
    spec = TopologySpec(
        num_border_routers=3,
        ags_per_br=3,
        aps_per_ag=4,
        hosts_per_ap=3,
    )
    topology = TopologyGenerator(spec, RandomStreams(5)).generate()

    print("=== Figure 1: the 4-tier integrated network architecture ===")
    print(render_architecture(topology.architecture, max_children=3))
    print()

    hierarchy = HierarchyBuilder("tour-group").from_topology(topology)
    print("=== Figure 2: the ring-based hierarchy over those entities ===")
    print(render_hierarchy(hierarchy, max_rings_per_tier=4))
    print()

    print("=== How the hierarchy scales (normalised hop count per membership change) ===")
    print(f"{'n (proxies)':>12} {'ring r':>7} {'HCN_Ring':>9} {'HCN_Tree':>9}")
    for r, ring_h, tree_h in ((5, 2, 3), (5, 3, 4), (5, 4, 5), (10, 2, 3), (10, 3, 4)):
        n = r**ring_h
        print(f"{n:>12} {r:>7} {hcn_ring(ring_h, r):>9} {hcn_tree(tree_h, r):>9}")
    print("\nThe ring hierarchy stays within ~25% of the tree hierarchy while "
          "tolerating one fault per ring — the paper's scalability/reliability trade.")


if __name__ == "__main__":
    main()
